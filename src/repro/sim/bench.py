"""Kernel microbenchmarks: the timer wheel against the frozen heap kernel.

End-to-end scenario runs are dominated by protocol and network code, so
they mostly hide what the event queue costs.  These benchmarks isolate the
kernel by driving the two :class:`~repro.runtime.base.Kernel`
implementations -- the timer-wheel :class:`repro.sim.scheduler.Simulator`
and the frozen pre-wheel :class:`repro.sim.legacy.HeapSimulator` -- with
nothing but scheduler traffic:

* ``timer_fire`` -- a deep population of spread timers, all of which fire.
  Insert + drain throughput at depth, no cancellation.
* ``retransmit_churn`` -- the protocol-shaped steady state: every virtual
  millisecond a batch of timers is armed and the previous batch cancelled
  before it fires (an ack stopping a retransmit timer).
* ``cancel_heavy`` -- a deep spread population of which 90% is cancelled
  before firing.  The wheel's true removal never touches a cancelled
  entry again; the heap sifts every tombstone to the top before it can
  drop it.
* ``same_time_chain`` -- each callback reschedules itself at the current
  timestamp; stresses same-timestamp FIFO dispatch and the ready-run
  merge.  This is the one shape where a one-element binary heap is close
  to optimal, so it bounds the wheel's constant-factor overhead.

Two figures are reported per scenario and kernel:

* ``lifecycle`` -- scheduler operations per second with *everything* in
  the timed region: scheduling, cancelling and draining.  Neither kernel
  gets to push costs outside the clock (the heap pays for cancellations
  at pop time, the wheel at cancel time), so this is the fair end-to-end
  figure.  Expect moderate ratios here: event-object construction costs
  both kernels the same.
* ``drain`` -- events dispatched per second of :meth:`run` time only.
  This isolates the dispatch path, which is what protocol latency sits
  behind once a queue has built up.  On ``cancel_heavy`` the asymmetry is
  structural: the wheel already removed every cancelled entry, while the
  heap must sift each tombstone to the top before it can drop it.

``python -m repro kernelbench`` runs everything and writes the BENCH json
consumed by ``benchmarks/test_bench_kernel.py``, which gates regressions
against ``benchmarks/baseline/kernel.json``.

One end-to-end scenario rides along: :func:`run_parallel_bench` times the
8-shard soak shape under the serial kernel, the in-process sharded kernel
(``jobs=8``) and the forked-worker kernel (``jobs=8&workers=4``) --
``python -m repro kernelbench --parallel`` and
``benchmarks/test_bench_parallel.py`` gate its ratios.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, Tuple

#: Scenario name -> relative weight of the default operation count.
SCENARIOS = ("timer_fire", "retransmit_churn", "cancel_heavy", "same_time_chain")

DEFAULT_OPS = 200_000


def _nop() -> None:
    return None


def make_kernel(kind: str, seed: int = 0):
    """A fresh kernel instance: ``"wheel"`` (current) or ``"heap"`` (frozen)."""
    if kind == "heap":
        from repro.sim.legacy import HeapSimulator

        return HeapSimulator(seed=seed)
    if kind == "wheel":
        from repro.sim.scheduler import Simulator

        return Simulator(seed=seed)
    raise ValueError(f"unknown kernel kind {kind!r} (expected 'wheel' or 'heap')")


# Each scenario drives a fresh kernel and returns (total scheduler
# operations performed, seconds spent inside sim.run()).  The harness times
# the whole call for the lifecycle figure and uses the run() seconds with
# sim.events_processed for the drain figure.

def _run_timed(sim) -> float:
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start


def _scenario_timer_fire(sim, ops: int) -> Tuple[int, float]:
    """Spread timers over ~800 ticks; everything fires."""
    schedule = sim.schedule
    for i in range(ops):
        schedule((i % 811) * 0.25, _nop)
    drain = _run_timed(sim)
    return ops + sim.events_processed, drain


def _scenario_retransmit_churn(sim, ops: int) -> Tuple[int, float]:
    """Arm timers ~150 ms out; cancel each when its 'ack' arrives."""
    depth = 2000
    pending = [sim.schedule(150.0 + (i % 97) * 0.37, _nop) for i in range(depth)]
    state = {"n": 0, "i": 0}

    def driver() -> None:
        i = state["i"]
        for _ in range(50):
            slot = i % depth
            pending[slot].cancel()
            pending[slot] = sim.schedule(150.0 + (i % 97) * 0.37, _nop)
            i += 1
        state["i"] = i
        state["n"] += 50
        if state["n"] < ops:
            sim.schedule(1.0, driver)

    sim.schedule(0.0, driver)
    drain = _run_timed(sim)
    return depth + state["n"] * 2 + sim.events_processed, drain


def _scenario_cancel_heavy(sim, ops: int) -> Tuple[int, float]:
    """Deep spread population, 90% cancelled before it can fire."""
    schedule = sim.schedule
    events = [schedule(1.0 + (i % 9973) * 0.11, _nop) for i in range(ops)]
    cancelled = 0
    for i, event in enumerate(events):
        if i % 10:
            event.cancel()
            cancelled += 1
    drain = _run_timed(sim)
    return ops + cancelled + sim.events_processed, drain


def _scenario_same_time_chain(sim, ops: int) -> Tuple[int, float]:
    """A callback chain at one timestamp: worst case for batched dispatch."""
    state = {"n": 0}

    def tick() -> None:
        state["n"] += 1
        if state["n"] < ops:
            sim.call_soon(tick)

    sim.call_soon(tick)
    drain = _run_timed(sim)
    return state["n"] + sim.events_processed, drain


_SCENARIO_FNS: Dict[str, Callable] = {
    "timer_fire": _scenario_timer_fire,
    "retransmit_churn": _scenario_retransmit_churn,
    "cancel_heavy": _scenario_cancel_heavy,
    "same_time_chain": _scenario_same_time_chain,
}


def run_scenario(kernel: str, scenario: str, ops: int = DEFAULT_OPS,
                 repeats: int = 3) -> Dict[str, float]:
    """Best-of-``repeats`` rates: ``lifecycle`` ops/s and ``drain`` events/s."""
    fn = _SCENARIO_FNS[scenario]
    lifecycle = 0.0
    drain = 0.0
    for _ in range(repeats):
        sim = make_kernel(kernel)
        start = time.perf_counter()
        performed, drain_wall = fn(sim, ops)
        wall = time.perf_counter() - start
        if wall > 0:
            lifecycle = max(lifecycle, performed / wall)
        if drain_wall > 0:
            drain = max(drain, sim.events_processed / drain_wall)
    return {"lifecycle": lifecycle, "drain": drain}


def calibration_seconds() -> float:
    """Fixed CPU-bound loop used to normalise machine speed (best of 3).

    The same loop as the traffic bench, so one committed calibration figure
    transfers between the two baselines.
    """
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        x = 0
        for i in range(2_000_000):
            x = (x * 31 + i) % 1000003
        best = min(best, time.perf_counter() - start)
    return best


def run_kernel_bench(ops: int = DEFAULT_OPS, repeats: int = 3) -> dict:
    """Run every scenario under both kernels; return the BENCH payload.

    The payload carries absolute ops/sec per kernel and scenario (machine
    dependent; normalised via ``calibration_seconds`` when gated) and the
    wheel/heap speedup ratios (machine independent: both kernels ran on the
    same interpreter moments apart).
    """
    kernels: dict = {"wheel": {}, "heap": {}}
    for scenario in SCENARIOS:
        # Interleave kernels per scenario so thermal/background drift hits
        # both sides roughly equally.
        for kind in ("heap", "wheel"):
            rates = run_scenario(kind, scenario, ops, repeats)
            kernels[kind][scenario] = {metric: round(rate)
                                       for metric, rate in rates.items()}
    speedup = {
        scenario: {
            metric: round(kernels["wheel"][scenario][metric]
                          / kernels["heap"][scenario][metric], 2)
            for metric in ("lifecycle", "drain")
        }
        for scenario in SCENARIOS
    }
    return {
        "ops_per_scenario": ops,
        "ops_per_second": kernels,
        "speedup_wheel_vs_heap": speedup,
        "calibration_seconds": round(calibration_seconds(), 3),
    }


#: The scaled-down 8-shard soak shape the parallel bench times (open loop,
#: hash placement, 10% cross-shard transactions, no stored trace -- the
#: single-run workload the sharded kernel exists for).
PARALLEL_BENCH_DSN = ("etx://a3.d8.c64?rate=32&arrival=poisson&seed=11"
                      "&workload=bank&placement=hash&xshard=0.1&trace=off")


def run_parallel_bench(requests: int = 2000, jobs: int = 8,
                       workers: int = 4,
                       dsn: str = PARALLEL_BENCH_DSN) -> dict:
    """Time one soak shape serial vs sharded vs forked workers.

    Returns a BENCH payload with wall seconds and events/sec per mode plus
    the two machine-independent same-run ratios the CI gate enforces:

    * ``inprocess_overhead`` -- sharded ``workers=0`` wall time over serial
      wall time.  The round engine's bookkeeping (context chains, seq
      marks, barrier merging) costs real time and buys nothing without OS
      processes, so this is a regression canary, not a speedup.
    * ``worker_speedup`` -- serial wall time over ``workers=N`` wall time.
      Only meaningful with at least ``workers`` idle cores; the gate skips
      it on smaller machines (``cpu_count`` is recorded in the payload).
    """
    from repro.experiments import soak

    def measure(extra: str) -> dict:
        report = soak.run(dsn + extra, requests=requests, checkpoints=2,
                          settle=2000.0)
        return {
            "wall_seconds": round(report.wall_seconds, 3),
            "events_processed": report.events_processed,
            "events_per_second": round(report.events_per_second),
            "delivered": report.delivered,
            "spec_ok": report.spec_ok,
        }

    serial = measure("")
    sharded = measure(f"&jobs={jobs}")
    forked = measure(f"&jobs={jobs}&workers={workers}")
    return {
        "dsn": dsn,
        "requests": requests,
        "jobs": jobs,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "serial": serial,
        "sharded": sharded,
        "forked": forked,
        "inprocess_overhead": round(
            sharded["wall_seconds"] / serial["wall_seconds"], 2),
        "worker_speedup": round(
            serial["wall_seconds"] / forked["wall_seconds"], 2),
    }


# ------------------------------------------------------------- allocations


#: The closed-loop traffic shape of ``benchmarks/test_bench_traffic.py``.
ALLOC_TRAFFIC_DSN = "etx://a3.d1.c4?seed=3&workload=bank&timing=paper&trace=off"

#: The serial soak shape (same scenario the parallel bench times).
ALLOC_SOAK_DSN = PARALLEL_BENCH_DSN


def _stepped_alloc_blocks(sim, is_done: Callable[[], bool],
                          max_steps: int = 2_000_000) -> Tuple[int, int]:
    """Sum positive per-event deltas of ``sys.getallocatedblocks()``.

    Pure-stdlib CPython exposes no cumulative allocation counter
    (``tracemalloc`` and the gc stats are net figures), so the bench
    single-steps the kernel and charges each event the growth it caused:
    an event that allocates five blocks and frees five *older* ones scores
    zero net but its churn still surfaces, because allocation and release
    of one object almost never land in the same step (a message allocated
    at send is freed at its delivery dispatch or later).  With the GC
    disabled and the workload deterministic the figure is reproducible to
    a fraction of a percent, which is what lets a committed baseline gate
    regressions.
    """
    import gc
    import sys

    blocks = sys.getallocatedblocks
    was_enabled = gc.isenabled()
    gc.disable()
    gc.collect()
    grown = 0
    steps = 0
    step = sim.step
    try:
        before = blocks()
        while not is_done():
            if not step():
                break
            steps += 1
            if steps > max_steps:
                raise RuntimeError(f"alloc bench exceeded {max_steps} steps")
            after = blocks()
            if after > before:
                grown += after - before
            before = after
    finally:
        if was_enabled:
            gc.enable()
    return grown, steps


def _alloc_closed_loop(dsn: str, requests_per_client: int) -> dict:
    """Allocation profile of the closed-loop traffic shape.

    Mirrors :class:`repro.workload.generator.ClosedLoop` (each client keeps
    one request in flight, reissuing on delivery) but drives the kernel one
    :meth:`step` at a time so the block counter can be sampled per event.
    """
    from repro import api

    system = api.build(api.Scenario.from_dsn(dsn))
    sim = system.sim
    clients = list(system.clients)
    remaining = dict.fromkeys(clients, requests_per_client)
    done = [0]
    total = requests_per_client * len(clients)

    def issue_next(client: str) -> None:
        if remaining[client] <= 0:
            return
        remaining[client] -= 1
        issued = system.issue(system.standard_request(), client)

        def on_delivered(_result) -> None:
            done[0] += 1
            issue_next(client)

        issued.future.on_resolve(on_delivered)

    for client in clients:
        issue_next(client)
    processed_before = sim.events_processed
    grown, steps = _stepped_alloc_blocks(sim, lambda: done[0] >= total)
    events = sim.events_processed - processed_before
    return {
        "dsn": dsn,
        "requests": total,
        "events": events,
        "alloc_blocks": grown,
        "blocks_per_event": round(grown / events, 3) if events else 0.0,
    }


def _alloc_open_loop(dsn: str, total: int, rate: float) -> dict:
    """Allocation profile of the serial soak shape (open-loop arrivals).

    Mirrors :class:`repro.workload.generator.OpenLoop`: the full arrival
    schedule is laid out up front (outside the sampled region), then the
    kernel is stepped to completion.
    """
    from repro import api

    system = api.build(api.Scenario.from_dsn(dsn))
    sim = system.sim
    clients = list(system.clients)
    done = [0]
    rng = sim.rng("load.arrivals")
    mean = 1000.0 / rate
    clock = 0.0

    def inject(client: str) -> None:
        issued = system.issue(system.standard_request(), client)
        issued.future.on_resolve(lambda _result: done.__setitem__(0, done[0] + 1))

    for index in range(total):
        client = clients[index % len(clients)]
        clock += rng.expovariate(1.0 / mean)
        sim.schedule(clock, lambda c=client: inject(c), name="arrival")
    processed_before = sim.events_processed
    grown, steps = _stepped_alloc_blocks(sim, lambda: done[0] >= total)
    events = sim.events_processed - processed_before
    return {
        "dsn": dsn,
        "requests": total,
        "events": events,
        "alloc_blocks": grown,
        "blocks_per_event": round(grown / events, 3) if events else 0.0,
    }


def run_alloc_bench(traffic_requests: int = 20, soak_requests: int = 400,
                    soak_rate: float = 32.0) -> dict:
    """Allocations-per-event microbench for the traffic and soak shapes.

    Returns the BENCH payload consumed by ``benchmarks/test_bench_alloc.py``
    and committed (on the reference machine) as
    ``benchmarks/baseline/alloc.json``.  Figures are positive per-event
    deltas of ``sys.getallocatedblocks()`` (see
    :func:`_stepped_alloc_blocks`), so lower is better and zero is the
    steady-state floor.
    """
    traffic = _alloc_closed_loop(ALLOC_TRAFFIC_DSN, traffic_requests)
    soak = _alloc_open_loop(ALLOC_SOAK_DSN, soak_requests, soak_rate)
    return {
        "method": "positive per-step deltas of sys.getallocatedblocks(), gc off",
        "traffic": traffic,
        "soak": soak,
        "calibration_seconds": round(calibration_seconds(), 3),
    }


def format_alloc_report(payload: dict) -> str:
    """Human-readable table of a :func:`run_alloc_bench` payload."""
    lines = ["alloc bench: positive allocated-block deltas per dispatched event"]
    for shape in ("traffic", "soak"):
        figures = payload[shape]
        lines.append(
            f"  {shape:<8} {figures['blocks_per_event']:>7.3f} blocks/event  "
            f"({figures['alloc_blocks']:,} blocks / {figures['events']:,} events, "
            f"{figures['requests']} requests)")
    return "\n".join(lines)


def format_parallel_report(payload: dict) -> str:
    """Human-readable table of a :func:`run_parallel_bench` payload."""
    lines = [f"parallel bench: {payload['requests']} requests on "
             f"{payload['dsn']}  (cpu_count {payload['cpu_count']})"]
    for mode, label in (("serial", "serial"),
                        ("sharded", f"jobs={payload['jobs']}"),
                        ("forked", f"jobs={payload['jobs']} "
                                   f"workers={payload['workers']}")):
        figures = payload[mode]
        lines.append(
            f"  {label:<18} wall {figures['wall_seconds']:>8.3f}s  "
            f"{figures['events_per_second']:>10,} events/s  "
            f"delivered {figures['delivered']}  spec_ok {figures['spec_ok']}")
    lines.append(
        f"  in-process overhead {payload['inprocess_overhead']:.2f}x serial"
        f"   worker speedup {payload['worker_speedup']:.2f}x serial")
    return "\n".join(lines)


def format_report(payload: dict) -> str:
    """Human-readable table of a :func:`run_kernel_bench` payload."""
    lines = [f"kernel bench: {payload['ops_per_scenario']} ops/scenario "
             f"(calibration {payload['calibration_seconds']:.3f}s)"]
    rates = payload["ops_per_second"]
    speedup = payload["speedup_wheel_vs_heap"]
    for scenario in SCENARIOS:
        heap = rates["heap"][scenario]
        wheel = rates["wheel"][scenario]
        lines.append(
            f"  {scenario:<16} lifecycle heap {heap['lifecycle']:>12,}/s  "
            f"wheel {wheel['lifecycle']:>12,}/s  {speedup[scenario]['lifecycle']:.2f}x"
            f"   | drain heap {heap['drain']:>12,}/s  "
            f"wheel {wheel['drain']:>12,}/s  {speedup[scenario]['drain']:.2f}x")
    return "\n".join(lines)
