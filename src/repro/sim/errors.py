"""Exceptions raised by the simulation kernel."""


class SimulationError(Exception):
    """Base class for all simulation-kernel errors."""


class SimulationLimitExceeded(SimulationError):
    """The simulation ran past its event or time budget without finishing."""


class ProcessNotRunning(SimulationError):
    """An operation requiring an *up* process was attempted on a crashed one."""


class InvalidScheduling(SimulationError):
    """An event was scheduled with an invalid delay or after the simulator stopped."""


class ThreadError(SimulationError):
    """A protocol thread raised an unhandled exception.

    The original exception is available as ``__cause__``.
    """
