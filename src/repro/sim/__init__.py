"""Discrete-event simulation kernel.

The kernel provides deterministic virtual time, crashable processes hosting
generator-coroutine threads, wait primitives (sleep / receive / future), and a
structured trace recorder.  All higher layers (network, failure detectors,
consensus, the e-Transaction protocol and its baselines) are built on it.
"""

from repro.sim.errors import (
    InvalidScheduling,
    ProcessNotRunning,
    SimulationError,
    SimulationLimitExceeded,
    ThreadError,
)
from repro.sim.process import Process, Thread
from repro.sim.scheduler import ScheduledEvent, Simulator
from repro.sim.tracing import TraceEvent, TraceRecorder
from repro.sim.waits import TIMEOUT, Receive, SimFuture, Sleep, WaitFuture

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "Process",
    "Thread",
    "TraceEvent",
    "TraceRecorder",
    "Sleep",
    "Receive",
    "WaitFuture",
    "SimFuture",
    "TIMEOUT",
    "SimulationError",
    "SimulationLimitExceeded",
    "ProcessNotRunning",
    "InvalidScheduling",
    "ThreadError",
]
