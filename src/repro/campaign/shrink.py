"""Counterexample shrinking: greedy delta debugging over fault schedules.

:func:`shrink_sequence` is a generic, deterministic shrinker: given a
sequence of items and an *oracle* (``True`` = "still interesting", i.e. the
schedule still violates), it first removes as many items as possible
(chunked removal halving down to single items, repeated to a fixpoint), then
simplifies each surviving item with the given *reducers* (also to a
fixpoint), then proves 1-minimality with a final single-removal pass.

Guarantees (the unit tests pin them down):

* **minimality** -- no single item of the result can be removed without the
  oracle turning false (within the check budget);
* **idempotence** -- shrinking an already-shrunk sequence is a no-op;
* **determinism** -- same input, same oracle, same reducers => same result,
  regardless of how often or where it runs.

:func:`atom_reducers` supplies the fault-domain reducers the campaign uses:
round times to the coarsest grid that still violates, shorten and round
durations, and merge partition groups.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator, Sequence, TypeVar

from repro.campaign.adversarial import ATOM_PARTITION, FaultAtom

ItemT = TypeVar("ItemT")

Oracle = Callable[[tuple], bool]
Reducer = Callable[[ItemT], Iterator[ItemT]]


@dataclass(frozen=True)
class ShrinkResult:
    """The shrunk sequence plus how many oracle checks it cost."""

    items: tuple
    checks: int
    exhausted: bool = False  # True when the check budget cut the search short


def shrink_sequence(items: Sequence[ItemT], oracle: Oracle,
                    reducers: Sequence[Reducer] = (),
                    max_checks: int = 256) -> ShrinkResult:
    """Greedily shrink ``items`` while ``oracle`` stays true.

    ``oracle`` is never called on the input itself (the caller asserts it is
    interesting) nor on an empty sequence.  Checks beyond ``max_checks`` are
    treated as "not interesting", which keeps the result valid (every kept
    transformation was verified) but possibly non-minimal; ``exhausted``
    reports that.
    """
    current = tuple(items)
    checks = 0
    exhausted = False
    seen: dict[tuple, bool] = {}

    def check(candidate: tuple) -> bool:
        nonlocal checks, exhausted
        # The fixpoint loops re-try previously rejected candidates; memoise
        # so duplicates consume neither budget nor oracle runs (items may be
        # unhashable for exotic callers, then every check is live).
        try:
            cached = seen.get(candidate)
        except TypeError:
            cached = None
        if cached is not None:
            return cached
        if checks >= max_checks:
            exhausted = True
            return False
        checks += 1
        verdict = bool(oracle(candidate))
        try:
            seen[candidate] = verdict
        except TypeError:
            pass
        return verdict

    def removal_pass(seq: tuple) -> tuple:
        """Chunked removal, halving chunk sizes, to a fixpoint."""
        changed = True
        while changed and len(seq) > 1:
            changed = False
            chunk = len(seq) // 2
            while chunk >= 1:
                start = 0
                while start + chunk <= len(seq) and len(seq) > 1:
                    candidate = seq[:start] + seq[start + chunk:]
                    if candidate and check(candidate):
                        seq = candidate
                        changed = True
                    else:
                        start += chunk
                chunk //= 2
        return seq

    def reduce_pass(seq: tuple) -> tuple:
        """Per-item simplification with the reducers, to a fixpoint."""
        if not reducers:
            return seq
        progress = True
        while progress:
            progress = False
            for index in range(len(seq)):
                accepted = True
                while accepted:
                    accepted = False
                    for reducer in reducers:
                        for variant in reducer(seq[index]):
                            if variant == seq[index]:
                                continue
                            candidate = seq[:index] + (variant,) + seq[index + 1:]
                            if check(candidate):
                                seq = candidate
                                progress = True
                                accepted = True
                                break
                        if accepted:
                            break
        return seq

    previous = None
    while previous != current:
        previous = current
        current = removal_pass(current)
        current = reduce_pass(current)
    return ShrinkResult(items=current, checks=checks, exhausted=exhausted)


# ------------------------------------------------------------ fault reducers


def _round_value(value: float, digits: int) -> float:
    return float(round(value, digits))


def reduce_atom_time(atom: FaultAtom) -> Iterator[FaultAtom]:
    """Round the atom's time to the coarsest grid (100 ms, 10 ms, 1 ms)."""
    for digits in (-2, -1, 0):
        rounded = _round_value(atom.time, digits)
        if rounded >= 0:
            yield replace(atom, time=rounded)


def reduce_atom_duration(atom: FaultAtom) -> Iterator[FaultAtom]:
    """Shorten and round the atom's duration (downtime / window / suspicion).

    Candidates are strictly shorter than the current duration: together with
    the halving step, a round-up could otherwise cycle (50 -> 100 -> 50).
    """
    if not atom.duration:
        return
    candidates = [_round_value(atom.duration, -2), _round_value(atom.duration, -1),
                  _round_value(atom.duration, 0)]
    if atom.duration / 2 >= 1.0:  # keep shrunk durations on a sane grid
        candidates.append(atom.duration / 2)
    for candidate in candidates:
        if 0 < candidate < atom.duration:
            yield replace(atom, duration=float(candidate))


def reduce_partition_groups(atom: FaultAtom) -> Iterator[FaultAtom]:
    """Merge a partition's named groups (fewer, coarser cuts shrink first)."""
    if atom.kind != ATOM_PARTITION or len(atom.groups) <= 1:
        return
    # Merge the last two named groups into one.
    merged = atom.groups[:-2] + (atom.groups[-2] + atom.groups[-1],)
    yield replace(atom, groups=merged)
    # Or drop the last named group entirely (its members join the implicit
    # rest).
    yield replace(atom, groups=atom.groups[:-1])


def atom_reducers() -> tuple[Reducer, ...]:
    """The fault-domain reducers the campaign shrinks with."""
    return (reduce_atom_time, reduce_atom_duration, reduce_partition_groups)
