"""Replayable campaign artifacts: counterexamples and clean-pass certificates.

A :class:`Counterexample` is the durable form of one campaign finding: a
single runnable scenario DSN (faults baked in), the exact violation strings
the run is expected to (re)produce -- empty for a *certificate*, which
asserts a clean pass -- and enough provenance to trace it back to the
campaign that found it.  Artifacts serialise to small JSON files; the
regression corpus under ``tests/corpus/`` is a directory of them, replayed
on every CI run by ``tests/test_campaign_corpus.py``.

Long fault schedules can be split out into a ``.faults.json`` sidecar (see
:func:`write_sidecar`), which the scenario DSN then references as
``faults=@<path>`` -- handy when a schedule no longer fits comfortably on a
command line.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Union
from urllib.parse import quote, unquote

from repro.api.scenario import Scenario

SCHEMA_VERSION = 1

KIND_VIOLATION = "violation"
KIND_CERTIFICATE = "certificate"


@dataclass(frozen=True)
class Counterexample:
    """One replayable campaign finding.

    ``dsn`` is the complete scenario (tier sizes, workload, seed, faults) as
    one runnable string; ``violations`` the exact expected violation strings
    (empty for ``kind == "certificate"``); ``requests``/``horizon``/``settle``
    the evaluation parameters the campaign used, so a replay reproduces the
    run byte-for-byte.
    """

    dsn: str
    kind: str
    violations: tuple[str, ...] = ()
    requests: int = 1
    horizon: float = 120_000.0
    settle: float = 20_000.0
    provenance: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in (KIND_VIOLATION, KIND_CERTIFICATE):
            raise ValueError(f"unknown artifact kind {self.kind!r}")
        object.__setattr__(self, "violations", tuple(self.violations))
        if self.kind == KIND_CERTIFICATE and self.violations:
            raise ValueError("a certificate asserts zero violations")
        if self.kind == KIND_VIOLATION and not self.violations:
            raise ValueError("a violation artifact needs its expected violations")

    def scenario(self, base_dir: str = "") -> Scenario:
        """The artifact's scenario, parsed.

        ``base_dir`` (the directory the artifact was loaded from) anchors a
        relative ``faults=@sidecar`` reference, so an artifact plus its
        sidecar replay from anywhere, not only from the directory that wrote
        them.
        """
        dsn = resolve_sidecar_paths(self.dsn, base_dir) if base_dir else self.dsn
        return Scenario.from_dsn(dsn)

    # ------------------------------------------------------------------ JSON

    def to_json(self) -> dict[str, Any]:
        """Plain-dict form (stable keys, schema-versioned)."""
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "dsn": self.dsn,
            "violations": list(self.violations),
            "requests": self.requests,
            "horizon": self.horizon,
            "settle": self.settle,
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "Counterexample":
        """Parse the :meth:`to_json` form (rejecting unknown schemas)."""
        schema = payload.get("schema")
        if schema != SCHEMA_VERSION:
            raise ValueError(f"unknown artifact schema {schema!r} "
                             f"(this build reads schema {SCHEMA_VERSION})")
        missing = [key for key in ("dsn", "kind") if key not in payload]
        if missing:
            raise ValueError(f"artifact is missing required "
                             f"key(s): {', '.join(missing)}")
        violations = payload.get("violations", ())
        if not isinstance(violations, (list, tuple)) or \
                not all(isinstance(v, str) for v in violations):
            raise ValueError("artifact 'violations' must be a list of "
                             "violation strings")
        return cls(
            dsn=payload["dsn"],
            kind=payload["kind"],
            violations=tuple(violations),
            requests=int(payload.get("requests", 1)),
            horizon=float(payload.get("horizon", 120_000.0)),
            settle=float(payload.get("settle", 20_000.0)),
            provenance=dict(payload.get("provenance", {})),
        )

    def save(self, path: str) -> str:
        """Write the artifact as deterministic JSON; returns ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "Counterexample":
        """Read an artifact written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))


_SIDECAR_REF = re.compile(r"faults=@([^&]+)")


def resolve_sidecar_paths(dsn: str, base_dir: str) -> str:
    """Anchor a relative ``faults=@path`` reference in ``dsn`` at ``base_dir``."""
    def fix(match: re.Match) -> str:
        path = unquote(match.group(1))
        if not os.path.isabs(path):
            path = os.path.join(base_dir, path)
        return "faults=@" + quote(path, safe="/")

    return _SIDECAR_REF.sub(fix, dsn)


def write_sidecar(scenario: Scenario, path: str) -> str:
    """Write ``scenario``'s faults as a ``.faults.json`` sidecar.

    Returns the DSN that references the sidecar (``faults=@<path>``): the
    same run, with the schedule carried next to the command line instead of
    on it.
    """
    tokens = [spec.to_token() for spec in scenario.faults]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"schema": SCHEMA_VERSION, "faults": tokens}, handle,
                  indent=2, sort_keys=True)
        handle.write("\n")
    bare = scenario.with_(faults=()).to_dsn()
    separator = "&" if "?" in bare else "?"
    # Quote the path: '+', '%', '&', '=' etc. in a file name would otherwise
    # be mangled by the query parser (parse_qsl unquotes on the way back in).
    return f"{bare}{separator}faults=@{quote(path, safe='/')}"


@dataclass
class ReplayResult:
    """Outcome of replaying one artifact."""

    counterexample: Counterexample
    actual: tuple[str, ...]

    @property
    def expected(self) -> tuple[str, ...]:
        return self.counterexample.violations

    @property
    def matches(self) -> bool:
        """The replay reproduced exactly the recorded verdict."""
        return self.actual == self.expected

    def summary(self) -> str:
        lines = [f"replay      {self.counterexample.dsn}",
                 f"kind        {self.counterexample.kind}"]
        if self.matches:
            what = ("clean pass confirmed" if not self.expected
                    else f"{len(self.actual)} violation(s) reproduced")
            lines.append(f"verdict     {what}")
            lines.extend(f"  {violation}" for violation in self.actual)
        else:
            lines.append("verdict     MISMATCH")
            lines.append(f"  expected {len(self.expected)} violation(s):")
            lines.extend(f"    {violation}" for violation in self.expected)
            lines.append(f"  got {len(self.actual)} violation(s):")
            lines.extend(f"    {violation}" for violation in self.actual)
        return "\n".join(lines)


def replay(source: Union[Counterexample, str]) -> ReplayResult:
    """Re-run a saved artifact (or a path to one) deterministically.

    The replay uses the exact evaluation parameters recorded in the
    artifact, so a counterexample reproduces its violations and a
    certificate reproduces its clean pass -- on any machine, in any order,
    under any parallelism.
    """
    from repro.campaign.runner import _EvalJob, evaluate_schedule

    base_dir = ""
    if isinstance(source, str):
        base_dir = os.path.dirname(os.path.abspath(source))
        source = Counterexample.load(source)
    row = evaluate_schedule(_EvalJob(
        scenario=source.scenario(base_dir), requests=source.requests,
        horizon=source.horizon, settle=source.settle))
    return ReplayResult(counterexample=source, actual=row.violations)
