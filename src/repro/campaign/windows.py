"""Protocol-phase tracking: where in a run faults hurt the most.

The e-Transaction proofs hinge on what happens at the boundaries between a
transaction's protocol phases -- a result computed but not yet voted on, a
vote cast but not yet decided, a decision made but not yet terminated.  The
:class:`FaultWindowObserver` subscribes to the trace event bus (the same bus
the online :class:`~repro.core.spec.SpecMonitor` rides) and tracks the live
phase of every transaction, recording a timestamped
:class:`PhaseTransition` for each protocol-critical instant.  A probe run's
transition list is the *injection-window map* the
:class:`~repro.campaign.adversarial.AdversarialFaultPlan` aims faults at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.sim.tracing import TraceEvent, TraceRecorder

PHASE_EXECUTING = "executing"
PHASE_VOTING = "voting"
PHASE_DECIDING = "deciding"
PHASE_TERMINATING = "terminating"
PHASE_RESHARDING = "resharding"

_PHASE_ORDER = {PHASE_EXECUTING: 0, PHASE_VOTING: 1, PHASE_DECIDING: 2,
                PHASE_TERMINATING: 3}

#: Trace categories the observer consumes, and the phase a transaction is in
#: once that event has happened.  ``db_vote`` advances to *deciding*: the
#: moment a first vote exists, the outcome is being decided -- the window the
#: paper's blocking arguments (and 2PC's failure mode) revolve around.
WINDOW_CATEGORIES = {
    "client_issue": PHASE_EXECUTING,
    "as_compute": PHASE_VOTING,
    "db_vote": PHASE_DECIDING,
    "db_decide": PHASE_DECIDING,
    "client_deliver": PHASE_TERMINATING,
    "as_terminate": PHASE_TERMINATING,
    "reshard": PHASE_RESHARDING,
}


@dataclass(frozen=True)
class PhaseTransition:
    """One protocol-critical instant observed on the bus.

    ``phase`` is the phase the transaction is in *after* the event; ``event``
    is the trace category that marked it; ``process`` is the process the
    event is attributed to (the natural fault target for this window).
    """

    time: float
    request_id: Any
    phase: str
    process: str
    event: str


class FaultWindowObserver:
    """Streams the trace bus into a live per-transaction phase map.

    Attach to any run (probe runs, campaign evaluations, interactive
    experiments); afterwards :attr:`transitions` is the ordered list of
    injection windows and :meth:`phase_of` answers the live phase of any
    still-in-flight transaction.
    """

    def __init__(self) -> None:
        self.transitions: list[PhaseTransition] = []
        self._phase: dict[Any, str] = {}
        self._done: set[Any] = set()
        self._request_of_result: dict[tuple, Any] = {}
        self._unsubscribers: list[Callable[[], None]] = []

    # ----------------------------------------------------------- subscription

    @classmethod
    def attach(cls, trace: TraceRecorder) -> "FaultWindowObserver":
        """Create an observer and subscribe it to ``trace``'s event bus."""
        observer = cls()
        for category in WINDOW_CATEGORIES:
            observer._unsubscribers.append(
                trace.subscribe(category, observer._on_event))
        return observer

    def detach(self) -> None:
        """Unsubscribe from the bus (the recorded windows stay)."""
        for unsubscribe in self._unsubscribers:
            unsubscribe()
        self._unsubscribers.clear()

    # ---------------------------------------------------------------- folding

    @staticmethod
    def _result_key(event: TraceEvent) -> tuple:
        """Normalise an event's result reference to the ``(client, j)`` key.

        ``db_vote``/``db_decide`` carry the key as their ``j`` payload;
        ``as_compute``/``as_terminate`` carry ``client`` and the inner ``j``
        separately.
        """
        j = event.get("j")
        if isinstance(j, (list, tuple)):
            return tuple(j)
        return (event.get("client"), j)

    def _request_id_of(self, event: TraceEvent) -> Any:
        request_id = event.get("request_id")
        if request_id is not None:
            return request_id
        if event.get("j") is None:
            return None
        key = self._result_key(event)
        return self._request_of_result.get(key, key)

    def _on_event(self, event: TraceEvent) -> None:
        phase = WINDOW_CATEGORIES[event.category]
        if event.category == "reshard":
            # Reconfiguration instants are deployment-wide, not transaction-
            # scoped: record them directly (begin/commit of each epoch) so a
            # campaign can aim faults into the migration window.
            self.transitions.append(PhaseTransition(
                time=event.time, request_id=("reshard", event.get("epoch")),
                phase=phase, process=event.process, event=event.category))
            return
        request_id = self._request_id_of(event)
        if request_id is None:
            return
        if event.category == "as_compute":
            # Result keys (client, j) appear on db_vote/db_decide events;
            # remember which request they belong to.  The mapping is kept
            # for the run's lifetime so late cleanup events (decides after
            # delivery) still label with the right request -- the observer
            # is a probe/diagnostic tool over bounded runs, not a soak
            # component.
            self._request_of_result[self._result_key(event)] = event.get("request_id")
        if request_id in self._done:
            # Still a protocol instant worth targeting (cleanup traffic), but
            # it must not resurrect a retired transaction's live phase.
            phase = PHASE_TERMINATING
        else:
            previous = self._phase.get(request_id)
            # Phases only advance; a retransmitted vote after delivery must
            # not drag a terminating transaction back to "deciding".
            if previous is not None and _PHASE_ORDER[phase] < _PHASE_ORDER[previous]:
                phase = previous
            self._phase[request_id] = phase
        self.transitions.append(PhaseTransition(
            time=event.time, request_id=request_id, phase=phase,
            process=event.process, event=event.category))
        if event.category in ("as_terminate", "client_deliver"):
            # Terminally resolved for the client's purposes: retire the
            # live-phase entry (the window list keeps the history).  Both
            # events retire because protocols differ in which one exists and
            # in which order they arrive -- etx terminates server-side before
            # or after the delivery, the one-phase baseline never emits
            # as_terminate at all.
            self._retire(request_id)

    def _retire(self, request_id: Any) -> None:
        if request_id in self._done:
            return
        self._done.add(request_id)
        self._phase.pop(request_id, None)

    # ------------------------------------------------------------------ query

    def phase_of(self, request_id: Any) -> Optional[str]:
        """Live phase of ``request_id`` (``None`` once terminated/unknown)."""
        return self._phase.get(request_id)

    @property
    def in_flight(self) -> int:
        """Transactions currently tracked (begun, not yet terminated)."""
        return len(self._phase)

    @property
    def completed(self) -> int:
        """Transactions whose live-phase entry has been retired."""
        return len(self._done)

    def windows(self, phase: Optional[str] = None,
                event: Optional[str] = None) -> list[PhaseTransition]:
        """The recorded injection windows, optionally filtered."""
        return [t for t in self.transitions
                if (phase is None or t.phase == phase)
                and (event is None or t.event == event)]
