"""Window-targeted fault generation and schedule mutation.

The unit of search is the :class:`FaultAtom` -- one *assumption-respecting*
fault move.  Atoms are deliberately one level above raw
:class:`~repro.failure.injection.FaultAction`\\ s: a partition atom carries its
own healing (it lowers to a ``partition`` + ``heal`` pair), a database crash
always recovers, and the plan caps permanent middle-tier crashes, so every
schedule the search explores stays inside the paper's correctness
assumptions.  That is what makes a found violation *meaningful*: the same
fault budget leaves the e-Transaction protocol clean.

:class:`AdversarialFaultPlan` samples atoms aimed at the phase-transition
windows a probe run recorded (see
:class:`~repro.campaign.windows.FaultWindowObserver`) and mutates known
schedules -- shift a fault in time, swap its target, stretch its duration,
add or drop one move -- which is how the campaign climbs from near-misses to
counterexamples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.api.scenario import FaultSpec, Scenario
from repro.campaign.windows import PhaseTransition

ATOM_CRASH = "crash"
ATOM_CRASH_FOR = "crash_for"
ATOM_PARTITION = "partition_window"
ATOM_SUSPICION = "false_suspicion"


@dataclass(frozen=True)
class FaultAtom:
    """One assumption-respecting fault move.

    ``duration`` is the downtime of a transient crash, the width of a
    partition window, or the length of a false suspicion; permanent crashes
    have no duration.  ``groups`` only applies to partition windows (the
    named groups are cut from each other and from the implicit rest).
    """

    kind: str
    time: float
    target: str = ""
    observer: str = ""
    duration: float = 0.0
    groups: tuple[tuple[str, ...], ...] = ()

    def to_specs(self) -> tuple[FaultSpec, ...]:
        """Lower this atom to DSN-expressible fault specs."""
        if self.kind == ATOM_CRASH:
            return (FaultSpec("crash", self.time, self.target),)
        if self.kind == ATOM_CRASH_FOR:
            return (FaultSpec("crash_for", self.time, self.target,
                              downtime=self.duration),)
        if self.kind == ATOM_PARTITION:
            return (FaultSpec("partition", self.time, groups=self.groups),
                    FaultSpec("heal", self.time + self.duration))
        return (FaultSpec("false_suspicion", self.time, self.target,
                          observer=self.observer, duration=self.duration),)


def atoms_to_specs(atoms: Sequence[FaultAtom]) -> tuple[FaultSpec, ...]:
    """Lower atoms to a time-ordered tuple of fault specs."""
    specs = [spec for atom in atoms for spec in atom.to_specs()]
    return tuple(sorted(specs, key=lambda s: (s.time, s.kind, s.target)))


@dataclass(frozen=True)
class AdversarialFaultPlan:
    """Samples and mutates fault schedules aimed at protocol windows.

    Every method is a pure function of its ``rng``, so a campaign driven by a
    seeded :class:`random.Random` is fully deterministic.
    """

    app_servers: tuple[str, ...]
    db_servers: tuple[str, ...]
    clients: tuple[str, ...]
    anchors: tuple[PhaseTransition, ...] = ()
    allow_false_suspicion: bool = False
    max_app_crashes: int = 1
    max_atoms: int = 3
    jitter: float = 12.0
    db_downtime_range: tuple[float, float] = (20.0, 150.0)
    partition_duration_range: tuple[float, float] = (25.0, 120.0)
    suspicion_duration: float = 40.0
    horizon: float = 2_000.0

    @classmethod
    def for_scenario(cls, scenario: Scenario,
                     anchors: Sequence[PhaseTransition] = (),
                     **overrides) -> "AdversarialFaultPlan":
        """The default plan for ``scenario``.

        The fault budget is the *same physical hardware abuse* for every
        protocol -- one permanent middle-tier crash (the paper's minority
        bound for the replicated protocol at its standard tier size, and
        exactly the coordinator loss the unreplicated baselines centralise
        their state against), transient database crashes, healing
        partitions, bounded false suspicions (where the stack has an
        unreliable failure detector to inject into).  For ``etx`` the bound
        is the *exact* minority -- crashing a majority of a 1- or 2-replica
        deployment would exceed the paper's stated assumptions and make any
        resulting "violation" meaningless.
        """
        minority = (scenario.num_app_servers - 1) // 2
        defaults = dict(
            app_servers=tuple(scenario.app_server_names),
            db_servers=tuple(scenario.db_server_names),
            clients=tuple(scenario.client_names),
            anchors=tuple(anchors),
            allow_false_suspicion=(scenario.protocol == "etx"
                                   and scenario.num_app_servers >= 2),
            max_app_crashes=(minority if scenario.protocol == "etx"
                             else max(1, minority)),
        )
        defaults.update(overrides)
        return cls(**defaults)

    # ---------------------------------------------------------------- sampling

    def _kinds(self) -> list[str]:
        kinds = [ATOM_CRASH_FOR, ATOM_PARTITION, ATOM_PARTITION]
        if self.max_app_crashes > 0:
            kinds.insert(0, ATOM_CRASH)
        if self.allow_false_suspicion and len(self.app_servers) >= 2:
            kinds.append(ATOM_SUSPICION)
        return kinds

    def _anchor_time(self, rng: random.Random) -> tuple[float, str]:
        """A jittered time at (or near) a recorded window, plus its process."""
        if self.anchors:
            anchor = rng.choice(self.anchors)
            time = anchor.time + rng.uniform(-self.jitter, self.jitter)
            return max(0.0, time), anchor.process
        return rng.uniform(0.0, self.horizon), ""

    def _partition_groups(self, rng: random.Random,
                          near: str) -> tuple[tuple[str, ...], ...]:
        """One named cut; everything unnamed forms the implicit other side."""
        cuts: list[tuple[tuple[str, ...], ...]] = []
        # Isolate one application server (the window's, when it names one).
        app = near if near in self.app_servers else rng.choice(self.app_servers)
        cuts.append(((app,),))
        # Split the middle tier (plus clients) from the data tier.
        cuts.append((tuple(self.app_servers) + tuple(self.clients),
                     tuple(self.db_servers)))
        # Cut the clients off.
        cuts.append((tuple(self.clients),))
        if len(self.db_servers) >= 2:
            # Split the data tier in half.
            half = len(self.db_servers) // 2
            cuts.append((tuple(self.db_servers[:half]),))
        return rng.choice(cuts)

    def _sample_atom(self, rng: random.Random) -> FaultAtom:
        time, near = self._anchor_time(rng)
        kind = rng.choice(self._kinds())
        if kind == ATOM_CRASH:
            target = near if near in self.app_servers else rng.choice(self.app_servers)
            return FaultAtom(ATOM_CRASH, time, target)
        if kind == ATOM_CRASH_FOR:
            target = near if near in self.db_servers else rng.choice(self.db_servers)
            return FaultAtom(ATOM_CRASH_FOR, time, target,
                             duration=rng.uniform(*self.db_downtime_range))
        if kind == ATOM_PARTITION:
            return FaultAtom(ATOM_PARTITION, time,
                             duration=rng.uniform(*self.partition_duration_range),
                             groups=self._partition_groups(rng, near))
        target = near if near in self.app_servers else rng.choice(self.app_servers)
        observer = rng.choice([a for a in self.app_servers if a != target])
        return FaultAtom(ATOM_SUSPICION, time, target, observer=observer,
                         duration=self.suspicion_duration)

    def _enforce(self, atoms: Sequence[FaultAtom]) -> tuple[FaultAtom, ...]:
        """Keep the schedule inside the assumption envelope.

        At most ``max_app_crashes`` permanent crashes, each of a *distinct*
        application server (crashing the same one twice is a no-op, crashing
        a majority would make liveness unfalsifiable).
        """
        kept: list[FaultAtom] = []
        crashed: set[str] = set()
        for atom in atoms:
            if atom.kind == ATOM_CRASH:
                if atom.target in crashed or len(crashed) >= self.max_app_crashes:
                    continue
                crashed.add(atom.target)
            kept.append(atom)
        return tuple(kept)

    def sample(self, rng: random.Random) -> tuple[FaultAtom, ...]:
        """A fresh window-targeted schedule of 1..``max_atoms`` moves."""
        count = rng.randint(1, self.max_atoms)
        atoms = self._enforce([self._sample_atom(rng) for _ in range(count)])
        while not atoms:  # everything was an over-budget crash; resample
            atoms = self._enforce([self._sample_atom(rng)])
        return atoms

    # ---------------------------------------------------------------- mutation

    def mutate(self, atoms: Sequence[FaultAtom],
               rng: random.Random) -> tuple[FaultAtom, ...]:
        """Perturb a known schedule by one move.

        Operators: shift one fault in time, swap its target, stretch or
        shrink its duration, drop one move, add one fresh window-targeted
        move.  The result is re-checked against the assumption envelope.
        """
        atoms = list(atoms)
        operators = ["shift", "retarget", "add"]
        if len(atoms) > 1:
            operators.append("drop")
        if any(a.duration for a in atoms):
            operators.append("stretch")
        operator = rng.choice(operators)
        if operator == "shift":
            index = rng.randrange(len(atoms))
            delta = rng.uniform(-3 * self.jitter, 3 * self.jitter)
            atoms[index] = replace(atoms[index],
                                   time=max(0.0, atoms[index].time + delta))
        elif operator == "retarget":
            index = rng.randrange(len(atoms))
            atoms[index] = self._retarget(atoms[index], rng)
        elif operator == "drop":
            atoms.pop(rng.randrange(len(atoms)))
        elif operator == "add":
            atoms.insert(rng.randrange(len(atoms) + 1), self._sample_atom(rng))
        else:  # stretch
            candidates = [i for i, a in enumerate(atoms) if a.duration]
            index = rng.choice(candidates)
            factor = rng.uniform(0.5, 2.0)
            atoms[index] = replace(atoms[index],
                                   duration=max(1.0, atoms[index].duration * factor))
        enforced = self._enforce(atoms)
        return enforced if enforced else self.sample(rng)

    def _retarget(self, atom: FaultAtom, rng: random.Random) -> FaultAtom:
        if atom.kind == ATOM_CRASH:
            return replace(atom, target=rng.choice(self.app_servers))
        if atom.kind == ATOM_CRASH_FOR:
            return replace(atom, target=rng.choice(self.db_servers))
        if atom.kind == ATOM_PARTITION:
            return replace(atom, groups=self._partition_groups(rng, ""))
        target = rng.choice(self.app_servers)
        others: Optional[list[str]] = [a for a in self.app_servers if a != target]
        if not others:
            return atom
        return replace(atom, target=target, observer=rng.choice(others))
