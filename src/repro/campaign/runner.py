"""The fault-campaign runner: seeded generations, online spec checks, shrink.

:func:`run_campaign` explores the fault space of one scenario:

1. **Probe** -- run the scenario fault-free with a
   :class:`~repro.campaign.windows.FaultWindowObserver` attached; its
   phase-transition log becomes the injection-window map.
2. **Search** -- seeded generations: generation 0 samples window-targeted
   schedules from the :class:`~repro.campaign.adversarial.AdversarialFaultPlan`,
   later generations mutate the highest-scoring survivors (near-miss
   schedules) and top up with fresh samples.  Every schedule is one scenario
   (faults baked in as DSN specs) evaluated -- in parallel over the PR-2
   ``map_jobs`` pool -- with the online ``SpecMonitor`` verdict forced to
   include the termination properties: a blocked protocol *is* the failure
   mode the paper cares about.
3. **Shrink** -- each distinct violation signature's first counterexample is
   delta-debugged down to a minimal schedule that still violates, then
   packaged as a replayable :class:`~repro.campaign.artifacts.Counterexample`.

Determinism is the contract, exactly as for sweeps: the master seed fixes
every generation byte-for-byte, parallel evaluation equals serial
evaluation, and a saved counterexample replays to the same violations.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro import api
from repro.api.runner import load_generator_for
from repro.api.scenario import Scenario
from repro.api.sweep import map_jobs
from repro.campaign.adversarial import AdversarialFaultPlan, FaultAtom, atoms_to_specs
from repro.campaign.artifacts import Counterexample
from repro.campaign.shrink import atom_reducers, shrink_sequence
from repro.campaign.windows import FaultWindowObserver, PhaseTransition
from repro.core.spec import _key_of_value
from repro.core.types import VOTE_YES, reset_request_counter


@dataclass(frozen=True)
class CampaignBudget:
    """How much searching a campaign may do.

    ``max_runs`` caps the *search* evaluations (the probe run and shrinking
    are accounted separately: ``shrink_checks`` caps the oracle re-runs spent
    minimising each counterexample).
    """

    max_runs: int = 200
    population: int = 12
    survivors: int = 3
    offspring_per_survivor: int = 3
    stop_after: int = 2          # distinct violation signatures before stopping
    shrink_checks: int = 60
    certificates: int = 3        # near-miss schedules certified clean
    requests: int = 1
    horizon: float = 120_000.0
    settle: float = 20_000.0

    def __post_init__(self) -> None:
        if self.max_runs < 1 or self.population < 1:
            raise ValueError("campaign budget needs max_runs >= 1 and "
                             "population >= 1")
        if self.stop_after < 1:
            raise ValueError("stop_after must be >= 1 (it is the number of "
                             "distinct violation signatures that ends the "
                             "search early; raise it to keep searching)")
        if self.survivors < 1 or self.offspring_per_survivor < 0:
            raise ValueError("campaign budget needs survivors >= 1 and "
                             "offspring_per_survivor >= 0")


@dataclass(frozen=True)
class _EvalJob:
    """Picklable unit of campaign work: one faulted scenario."""

    scenario: Scenario
    requests: int
    horizon: float
    settle: float


@dataclass(frozen=True)
class EvaluatedRun:
    """Outcome and progress metric of one schedule's evaluation."""

    dsn: str
    delivered: int
    undelivered: int
    in_doubt: int
    in_flight: int               # spec-monitor transactions never resolved
    aborted_results: int
    in_doubt_dwell: float        # summed voted-yes-but-undecided time (ms)
    violations: tuple[str, ...]
    properties: tuple[str, ...]  # sorted violated property names

    @property
    def violating(self) -> bool:
        return bool(self.violations)

    @property
    def score(self) -> float:
        """Progress metric: how close this schedule got to a violation.

        Violations dominate everything; otherwise unresolved protocol state
        (in-doubt databases, unretired monitor transactions, undelivered
        requests) and in-doubt dwell time rank near-misses.
        """
        if self.violations:
            return 1e9 + len(self.violations)
        return (5.0 * self.in_doubt + 3.0 * self.in_flight
                + 2.0 * self.undelivered + 1.0 * self.aborted_results
                + self.in_doubt_dwell / 1_000.0)


def _in_doubt_dwell(system) -> float:
    """Summed time (virtual ms) databases spent voted-yes-but-undecided.

    Needs ``full`` trace retention (the campaign default); under a bounded
    retention the dwell component of the score degrades to 0 and the counters
    carry the ranking.
    """
    trace = system.trace
    if trace.retention != "full":
        return 0.0
    first_vote: dict[tuple, float] = {}
    first_decide: dict[tuple, float] = {}
    for event in trace.select("db_vote", vote=VOTE_YES):
        key = (event.process, _key_of_value(event.get("j")))
        first_vote.setdefault(key, event.time)
    for event in trace.select("db_decide"):
        key = (event.process, _key_of_value(event.get("j")))
        first_decide.setdefault(key, event.time)
    now = system.sim.now
    return sum(first_decide.get(key, now) - voted
               for key, voted in first_vote.items())


def evaluate_schedule(job: _EvalJob) -> EvaluatedRun:
    """Run one faulted scenario and measure it (module-level: picklable).

    Termination checking is deliberately forced on: the schedules a campaign
    explores stay inside the paper's assumption envelope, under which a
    protocol that blocks (undelivered requests, databases stuck in doubt) is
    violating the specification, not merely unlucky.
    """
    reset_request_counter()
    system = api.build(job.scenario)
    generator = load_generator_for(job.scenario,
                                   horizon_per_request=job.horizon)
    stats = generator.run(system, job.requests)
    if job.settle > 0:
        system.run(until=system.sim.now + job.settle)
    report = system.check_spec(check_termination=True)
    violations = tuple(str(v) for v in report.violations)
    properties = tuple(sorted({v.property_name for v in report.violations}))
    return EvaluatedRun(
        dsn=job.scenario.to_dsn(),
        delivered=stats.count,
        undelivered=stats.undelivered,
        in_doubt=sum(db.in_doubt for db in stats.by_database.values()),
        in_flight=system.spec_monitor.in_flight,
        aborted_results=stats.aborted_results,
        in_doubt_dwell=_in_doubt_dwell(system),
        violations=violations,
        properties=properties,
    )


def probe_windows(scenario: Scenario, requests: int = 1,
                  horizon: float = 120_000.0,
                  settle: float = 5_000.0) -> tuple[PhaseTransition, ...]:
    """Fault-free probe run; returns the recorded injection windows."""
    reset_request_counter()
    system = api.build(scenario.with_(faults=()))
    observer = FaultWindowObserver.attach(system.trace)
    generator = load_generator_for(scenario, horizon_per_request=horizon)
    generator.run(system, requests)
    if settle > 0:
        system.run(until=system.sim.now + settle)
    observer.detach()
    return tuple(observer.transitions)


@dataclass(frozen=True)
class GenerationStats:
    """One generation's summary line."""

    index: int
    size: int
    best_score: float
    violating_runs: int


@dataclass
class CampaignReport:
    """Everything one campaign produced."""

    dsn: str
    seed: int
    budget: CampaignBudget
    windows: int
    runs: int = 0
    shrink_runs: int = 0
    generations: list[GenerationStats] = field(default_factory=list)
    counterexamples: list[Counterexample] = field(default_factory=list)
    certificates: list[Counterexample] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No schedule in the explored budget violated the specification."""
        return not self.counterexamples

    def summary(self) -> str:
        """Human-readable multi-line report (what the CLI prints)."""
        lines = [
            f"campaign    {self.dsn}",
            f"budget      {self.budget.max_runs} runs max, population "
            f"{self.budget.population}, master seed {self.seed}",
            f"windows     {self.windows} injection windows from the probe run",
            f"search      {self.runs} schedules evaluated over "
            f"{len(self.generations)} generation(s), "
            f"{self.shrink_runs} shrink re-runs",
        ]
        for stats in self.generations:
            lines.append(f"  gen {stats.index}: {stats.size} schedules, "
                         f"best score {min(stats.best_score, 1e9):.1f}, "
                         f"{stats.violating_runs} violating")
        if self.counterexamples:
            lines.append(f"violations  {len(self.counterexamples)} distinct "
                         "counterexample(s), shrunk:")
            for example in self.counterexamples:
                lines.append(f"  {example.dsn}")
                for violation in example.violations:
                    lines.append(f"    {violation}")
        else:
            lines.append("violations  none found: the protocol survived the "
                         "campaign budget")
            for example in self.certificates:
                lines.append(f"  certified clean: {example.dsn}")
        return "\n".join(lines)


def _signature(row: EvaluatedRun) -> tuple[str, ...]:
    return row.properties


def run_campaign(scenario: Union[Scenario, str],
                 budget: Optional[CampaignBudget] = None,
                 seed: int = 0, workers: Optional[int] = 1,
                 plan: Optional[AdversarialFaultPlan] = None) -> CampaignReport:
    """Adversarially search ``scenario``'s fault space within ``budget``.

    Returns a :class:`CampaignReport` whose counterexamples are shrunk and
    replay-ready.  Fully deterministic for a given ``(scenario, budget,
    seed)`` -- including under ``workers > 1``.
    """
    if isinstance(scenario, str):
        scenario = Scenario.from_dsn(scenario)
    base = scenario.with_(faults=())
    budget = budget if budget is not None else CampaignBudget()
    windows = probe_windows(base, requests=budget.requests,
                            horizon=budget.horizon, settle=budget.settle)
    if plan is None:
        plan = AdversarialFaultPlan.for_scenario(base, anchors=windows)
    report = CampaignReport(dsn=base.to_dsn(), seed=seed, budget=budget,
                            windows=len(windows))
    rng = random.Random(zlib.crc32(f"campaign:{base.to_dsn()}:{seed}".encode()))

    def job_for(atoms: Sequence[FaultAtom]) -> _EvalJob:
        return _EvalJob(scenario=base.with_(faults=atoms_to_specs(atoms)),
                        requests=budget.requests, horizon=budget.horizon,
                        settle=budget.settle)

    by_signature: dict[tuple[str, ...], tuple[tuple[FaultAtom, ...], EvaluatedRun]] = {}
    all_rows: list[tuple[tuple[FaultAtom, ...], EvaluatedRun]] = []
    entries: list[tuple[FaultAtom, ...]] = [plan.sample(rng)
                                            for _ in range(budget.population)]
    generation = 0
    while report.runs < budget.max_runs:
        entries = entries[:budget.max_runs - report.runs]
        rows = map_jobs(evaluate_schedule, [job_for(atoms) for atoms in entries],
                        workers=workers)
        report.runs += len(rows)
        all_rows.extend(zip(entries, rows))
        report.generations.append(GenerationStats(
            index=generation, size=len(rows),
            best_score=max((row.score for row in rows), default=0.0),
            violating_runs=sum(row.violating for row in rows)))
        for atoms, row in zip(entries, rows):
            if row.violating:
                by_signature.setdefault(_signature(row), (atoms, row))
        if len(by_signature) >= budget.stop_after:
            break
        if report.runs >= budget.max_runs:
            break
        ranked = sorted(range(len(rows)), key=lambda i: (-rows[i].score, i))
        children = [plan.mutate(entries[index], rng)
                    for index in ranked[:budget.survivors]
                    for _ in range(budget.offspring_per_survivor)]
        while len(children) < budget.population:
            children.append(plan.sample(rng))
        entries = children[:budget.population]
        generation += 1

    for signature, (atoms, row) in sorted(by_signature.items()):
        shrunk_atoms, shrunk_row, checks = _shrink_counterexample(
            atoms, row, signature, job_for, budget)
        report.shrink_runs += checks
        report.counterexamples.append(Counterexample(
            dsn=job_for(shrunk_atoms).scenario.to_dsn(),
            kind="violation",
            violations=shrunk_row.violations,
            requests=budget.requests,
            horizon=budget.horizon,
            settle=budget.settle,
            provenance={
                "base_dsn": base.to_dsn(),
                "campaign_seed": seed,
                "search_runs": report.runs,
                "original_actions": len(atoms_to_specs(atoms)),
                "shrink_checks": checks,
                "signature": list(signature),
            },
        ))
    if not by_signature:
        report.certificates = _certificates(all_rows, base, report, budget)
    return report


def _shrink_counterexample(atoms, row, signature, job_for, budget):
    """Delta-debug one violating schedule; returns (atoms, row, checks)."""
    target = set(signature)
    cache: dict[tuple[FaultAtom, ...], EvaluatedRun] = {tuple(atoms): row}

    def oracle(candidate: tuple) -> bool:
        candidate = tuple(candidate)
        if candidate not in cache:
            cache[candidate] = evaluate_schedule(job_for(candidate))
        # The shrunk schedule must still violate *everything* the original
        # did: a (T.1, T.2) blocking counterexample must not silently decay
        # into a plain undelivered-request one while shrinking.
        return target <= set(cache[candidate].properties)

    result = shrink_sequence(atoms, oracle, reducers=atom_reducers(),
                             max_checks=budget.shrink_checks)
    shrunk = tuple(result.items)
    shrunk_row = cache.get(shrunk)
    if shrunk_row is None:  # the input was already minimal and never re-run
        shrunk_row = evaluate_schedule(job_for(shrunk))
    return shrunk, shrunk_row, result.checks


def _certificates(all_rows, base, report, budget):
    """Package the nastiest clean schedules as replayable certificates.

    A clean campaign's evidence should be replayable just like a violation:
    the highest-scoring (closest-to-the-edge) schedules the search actually
    evaluated become corpus artifacts asserting *zero* violations.
    """
    ranked = sorted(range(len(all_rows)),
                    key=lambda i: (-all_rows[i][1].score, i))
    certificates: list[Counterexample] = []
    seen: set[str] = set()
    for index in ranked:
        _, row = all_rows[index]
        if row.violating or row.dsn in seen:
            continue
        seen.add(row.dsn)
        certificates.append(Counterexample(
            dsn=row.dsn, kind="certificate", violations=(),
            requests=budget.requests, horizon=budget.horizon,
            settle=budget.settle,
            provenance={"base_dsn": base.to_dsn(),
                        "campaign_seed": report.seed,
                        "search_runs": report.runs}))
        if len(certificates) >= budget.certificates:
            break
    return certificates
