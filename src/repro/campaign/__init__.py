"""Crucible: adversarial fault-campaign engine.

The paper's e-Transaction guarantees quantify over *every* failure schedule;
random sampling (``RandomFaultPlan``) barely scratches that space.  This
package searches it adversarially instead:

* :class:`~repro.campaign.windows.FaultWindowObserver` subscribes to the
  trace event bus and exposes the live protocol phase of every transaction
  (executing / voting / deciding / terminating), turning a probe run into a
  list of timestamped *injection windows* -- the phase boundaries the paper's
  proofs hinge on.
* :class:`~repro.campaign.adversarial.AdversarialFaultPlan` aims crashes,
  partitions and false suspicions at those windows (instead of uniformly at
  the clock) and perturbs known schedules with mutation operators.
* :func:`~repro.campaign.runner.run_campaign` drives seeded generations of
  schedules through the sweep executor's worker pool, spec-checking each run
  online and ranking near-misses by a progress metric (in-doubt dwell time,
  unresolved monitor state, undelivered load).
* :mod:`~repro.campaign.shrink` delta-debugs any violating schedule down to a
  minimal one that still violates, and
  :mod:`~repro.campaign.artifacts` serialises it as a replayable
  counterexample (a single runnable scenario DSN plus expected violations)
  for the permanent regression corpus under ``tests/corpus/``.
"""

from repro.campaign.adversarial import AdversarialFaultPlan, FaultAtom, atoms_to_specs
from repro.campaign.artifacts import Counterexample, ReplayResult, replay, write_sidecar
from repro.campaign.runner import (
    CampaignBudget,
    CampaignReport,
    EvaluatedRun,
    probe_windows,
    run_campaign,
)
from repro.campaign.shrink import ShrinkResult, shrink_sequence
from repro.campaign.windows import (
    PHASE_DECIDING,
    PHASE_EXECUTING,
    PHASE_TERMINATING,
    PHASE_VOTING,
    FaultWindowObserver,
    PhaseTransition,
)

__all__ = [
    "AdversarialFaultPlan",
    "FaultAtom",
    "atoms_to_specs",
    "Counterexample",
    "ReplayResult",
    "replay",
    "write_sidecar",
    "CampaignBudget",
    "CampaignReport",
    "EvaluatedRun",
    "probe_windows",
    "run_campaign",
    "ShrinkResult",
    "shrink_sequence",
    "FaultWindowObserver",
    "PhaseTransition",
    "PHASE_EXECUTING",
    "PHASE_VOTING",
    "PHASE_DECIDING",
    "PHASE_TERMINATING",
]
