"""Communication-step profiles (the paper's Figures 1 and 7).

Figures 1 and 7 are message-sequence diagrams.  We regenerate their content as

* an ordered list of the protocol-relevant messages of a run (sender, receiver,
  type, time) -- consensus-internal traffic is collapsed into the logical
  ``regA.write``/``regD.write`` steps it implements, matching how the paper
  draws them;
* per-type message counts and a count of *client-visible communication steps*
  (the sequential message hops between the request leaving the client and the
  result arriving), which is the quantity the paper's analytic comparison
  discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.sim.tracing import TraceRecorder

PROTOCOL_MESSAGE_TYPES = (
    "Request", "Result", "Execute", "ExecuteResult", "Prepare", "Vote",
    "Decide", "AckDecide", "Ready", "CommitOnePhase", "AckCommit",
    "PBStart", "PBStartAck", "PBOutcome", "PBOutcomeAck",
)


@dataclass(frozen=True)
class Step:
    """One arrow of the message-sequence diagram."""

    time: float
    sender: str
    receiver: str
    msg_type: str

    def render(self) -> str:
        """``t=12.3  a1 -> d1  Prepare``"""
        return f"t={self.time:8.1f}  {self.sender:>4} -> {self.receiver:<4}  {self.msg_type}"


@dataclass
class CommunicationProfile:
    """Message-level profile of one run (or one scenario)."""

    label: str
    steps: list[Step] = field(default_factory=list)
    register_writes: list[tuple[float, str, str]] = field(default_factory=list)
    total_messages: int = 0
    consensus_messages: int = 0

    def count(self, msg_type: str) -> int:
        """Number of messages of one type."""
        return sum(1 for step in self.steps if step.msg_type == msg_type)

    def counts_by_type(self) -> dict[str, int]:
        """Histogram of protocol message types."""
        histogram: dict[str, int] = {}
        for step in self.steps:
            histogram[step.msg_type] = histogram.get(step.msg_type, 0) + 1
        return histogram

    def message_types(self) -> set[str]:
        """The set of message types observed."""
        return {step.msg_type for step in self.steps}

    def client_visible_steps(self, client: str = "c1") -> int:
        """Sequential hops between the client's request and its delivered result.

        Counts the distinct send times of protocol messages between the first
        ``Request`` leaving ``client`` and the first ``Result`` reaching it --
        an operational stand-in for the "communication steps" axis of Figure 7.
        """
        start: Optional[float] = None
        end: Optional[float] = None
        for step in self.steps:
            if start is None and step.msg_type == "Request" and step.sender == client:
                start = step.time
            if step.msg_type == "Result" and step.receiver == client:
                end = step.time
                break
        if start is None or end is None:
            return 0
        times = {step.time for step in self.steps if start <= step.time <= end}
        return len(times)

    def sequence_diagram(self, limit: Optional[int] = None) -> str:
        """Multi-line text rendering of the message sequence."""
        steps = self.steps if limit is None else self.steps[:limit]
        lines = [f"== {self.label} =="]
        lines.extend(step.render() for step in steps)
        for time, server, register in self.register_writes:
            lines.append(f"t={time:8.1f}  {server:>4} writes {register}")
        return "\n".join(lines)


def profile_from_trace(trace: TraceRecorder, label: str,
                       include_types: Iterable[str] = PROTOCOL_MESSAGE_TYPES,
                       start: float = 0.0, end: Optional[float] = None) -> CommunicationProfile:
    """Build a :class:`CommunicationProfile` from a run's *stored* trace.

    Needs ``full`` retention; for a profile that works under any retention
    policy subscribe a :class:`StreamingProfile` before the run instead.
    """
    allowed = set(include_types)
    profile = CommunicationProfile(label=label)
    for event in trace.select("msg_send"):
        if end is not None and event.time > end:
            continue
        if event.time < start:
            continue
        msg_type = event.get("msg_type")
        profile.total_messages += 1
        if msg_type == "Consensus":
            profile.consensus_messages += 1
        if msg_type not in allowed:
            continue
        profile.steps.append(Step(time=event.time, sender=event.process,
                                  receiver=event.get("destination", "?"),
                                  msg_type=msg_type))
    for event in trace.select("consensus_decide"):
        if end is not None and event.time > end:
            continue
        instance = event.get("instance")
        if isinstance(instance, tuple) and len(instance) == 2:
            profile.register_writes.append((event.time, event.process, f"{instance[0]}[{instance[1]}]"))
    profile.steps.sort(key=lambda step: step.time)
    return profile


class StreamingProfile:
    """Streaming builder of a :class:`CommunicationProfile`.

    Subscribes to the ``msg_send``/``consensus_decide`` bus categories and
    folds each event in as it happens, producing the same profile
    :func:`profile_from_trace` would extract from a fully retained trace --
    but independent of the retention policy.  Attach *before* the run
    (typically right after building the deployment).
    """

    def __init__(self, trace: TraceRecorder, label: str,
                 include_types: Iterable[str] = PROTOCOL_MESSAGE_TYPES):
        self._allowed = set(include_types)
        self.profile = CommunicationProfile(label=label)
        self._unsubscribers = [
            trace.subscribe("msg_send", self._on_send),
            trace.subscribe("consensus_decide", self._on_consensus_decide),
        ]

    def _on_send(self, event) -> None:
        msg_type = event.get("msg_type")
        profile = self.profile
        profile.total_messages += 1
        if msg_type == "Consensus":
            profile.consensus_messages += 1
        if msg_type in self._allowed:
            profile.steps.append(Step(time=event.time, sender=event.process,
                                      receiver=event.get("destination", "?"),
                                      msg_type=msg_type))

    def _on_consensus_decide(self, event) -> None:
        instance = event.get("instance")
        if isinstance(instance, tuple) and len(instance) == 2:
            self.profile.register_writes.append(
                (event.time, event.process, f"{instance[0]}[{instance[1]}]"))

    def detach(self) -> "CommunicationProfile":
        """Stop consuming events and return the accumulated profile."""
        for unsubscribe in self._unsubscribers:
            unsubscribe()
        self._unsubscribers.clear()
        return self.profile


@dataclass
class StepComparison:
    """Figure 7 as data: one profile per protocol, plus derived counts."""

    profiles: dict[str, CommunicationProfile] = field(default_factory=dict)

    def add(self, profile: CommunicationProfile) -> None:
        """Add one protocol's profile."""
        self.profiles[profile.label] = profile

    def message_counts(self) -> dict[str, int]:
        """Total protocol messages per protocol."""
        return {label: len(profile.steps) for label, profile in self.profiles.items()}

    def to_table(self) -> str:
        """Text table: one row per protocol with message counts by category."""
        categories = ["Request", "Execute", "Prepare", "Vote", "Decide", "AckDecide",
                      "CommitOnePhase", "Result"]
        header = "protocol".ljust(16) + "".join(c.rjust(9) for c in categories) + \
            "  total".rjust(9)
        lines = [header]
        for label, profile in self.profiles.items():
            counts = profile.counts_by_type()
            row = label.ljust(16)
            for category in categories:
                row += str(counts.get(category, 0)).rjust(9)
            row += str(len(profile.steps)).rjust(9)
            lines.append(row)
        return "\n".join(lines)
