"""Measurement: percentiles, latency-component accounting and step profiles.

Every accumulator exists in two forms: a **streaming** one subscribed to the
trace event bus at build time (works under any trace retention policy) and a
**post-hoc** one that re-scans a fully stored trace (the historical path,
still used by small replay-style experiments)."""

from repro.metrics.latency import (
    COMPONENT_ORDER,
    LatencyBreakdown,
    LatencyComponentStream,
    LatencyTable,
    breakdown_from_run,
)
from repro.metrics.percentiles import SUMMARY_FRACTIONS, percentile, summarise
from repro.metrics.steps import (
    PROTOCOL_MESSAGE_TYPES,
    CommunicationProfile,
    Step,
    StepComparison,
    StreamingProfile,
    profile_from_trace,
)
from repro.metrics.stream import DatabaseOutcomeStream

__all__ = [
    "percentile",
    "summarise",
    "SUMMARY_FRACTIONS",
    "LatencyBreakdown",
    "LatencyComponentStream",
    "LatencyTable",
    "breakdown_from_run",
    "COMPONENT_ORDER",
    "CommunicationProfile",
    "Step",
    "StepComparison",
    "StreamingProfile",
    "profile_from_trace",
    "PROTOCOL_MESSAGE_TYPES",
    "DatabaseOutcomeStream",
]
