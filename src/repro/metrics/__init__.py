"""Measurement: percentiles, latency-component accounting and step profiles."""

from repro.metrics.latency import (
    COMPONENT_ORDER,
    LatencyBreakdown,
    LatencyTable,
    breakdown_from_run,
)
from repro.metrics.percentiles import SUMMARY_FRACTIONS, percentile, summarise
from repro.metrics.steps import (
    PROTOCOL_MESSAGE_TYPES,
    CommunicationProfile,
    Step,
    StepComparison,
    profile_from_trace,
)

__all__ = [
    "percentile",
    "summarise",
    "SUMMARY_FRACTIONS",
    "LatencyBreakdown",
    "LatencyTable",
    "breakdown_from_run",
    "COMPONENT_ORDER",
    "CommunicationProfile",
    "Step",
    "StepComparison",
    "profile_from_trace",
    "PROTOCOL_MESSAGE_TYPES",
]
