"""Measurement: latency-component accounting and communication-step profiles."""

from repro.metrics.latency import (
    COMPONENT_ORDER,
    LatencyBreakdown,
    LatencyTable,
    breakdown_from_run,
)
from repro.metrics.steps import (
    PROTOCOL_MESSAGE_TYPES,
    CommunicationProfile,
    Step,
    StepComparison,
    profile_from_trace,
)

__all__ = [
    "LatencyBreakdown",
    "LatencyTable",
    "breakdown_from_run",
    "COMPONENT_ORDER",
    "CommunicationProfile",
    "Step",
    "StepComparison",
    "profile_from_trace",
    "PROTOCOL_MESSAGE_TYPES",
]
