"""Streaming per-database outcome accounting.

:class:`DatabaseOutcomeStream` subscribes to the trace bus and maintains the
per-database committed/aborted transaction sets that
``RunStatistics.by_database`` used to recover by re-scanning the whole trace
after every run.  The deployments attach one at build time, so the statistics
work under any trace retention policy and cost O(transactions) instead of
O(events) to produce.
"""

from __future__ import annotations

from repro.core.types import ABORT, COMMIT
from repro.sim.tracing import TraceRecorder


class DatabaseOutcomeStream:
    """Distinct committed/aborted transactions per database, fed by the bus.

    Counts distinct *transactions*, not ``Decide`` applications: a lost
    acknowledgement or a database recovery makes the protocol re-send the
    same decision, and each re-application records another ``db_decide``
    event.  A transaction that was first refused (abort) and later, after
    re-execution, committed counts once, as a commit.
    """

    def __init__(self, trace: TraceRecorder, db_server_names: list[str]):
        self._committed: dict[str, set] = {name: set() for name in db_server_names}
        self._aborted: dict[str, set] = {name: set() for name in db_server_names}
        self._unsubscribe = trace.subscribe("db_decide", self._on_decide)

    def _on_decide(self, event) -> None:
        committed = self._committed.get(event.process)
        if committed is None:
            return
        outcome = event.get("outcome")
        key = event.get("j")
        if outcome == COMMIT:
            committed.add(key)
        elif outcome == ABORT:
            self._aborted[event.process].add(key)

    def commits(self, db: str) -> int:
        """Distinct committed transactions at ``db``."""
        return len(self._committed.get(db, ()))

    def aborts(self, db: str) -> int:
        """Distinct transactions that ended aborted (and never committed)."""
        return len(self._aborted.get(db, set()) - self._committed.get(db, set()))

    def detach(self) -> None:
        """Stop consuming events (the accumulated sets stay readable)."""
        self._unsubscribe()
