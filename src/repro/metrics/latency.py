"""Latency-component accounting (the rows of the paper's Figure 8).

The paper attributes the client-observed response time to the components
``start``, ``end``, ``commit``, ``prepare``, ``SQL``, ``log-start``,
``log-outcome`` and ``other``.  We do the same:

* the database-phase components come from the run's
  :class:`~repro.core.timing.DatabaseTiming` (they are what the database
  actually slept for),
* ``log-start``/``log-outcome`` come from the trace -- the measured duration
  of the ``regA``/``regD`` register writes for the asynchronous-replication
  protocol, the measured forced log writes for the 2PC coordinator, and zero
  for the unreliable baseline,
* ``other`` is whatever part of the measured client latency the named
  components do not explain (client/server communication, scheduling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.timing import DatabaseTiming
from repro.sim.tracing import TraceRecorder

COMPONENT_ORDER = [
    "start", "end", "commit", "prepare", "SQL", "log-start", "log-outcome", "other",
]


@dataclass
class LatencyBreakdown:
    """One protocol's latency split into the paper's components (milliseconds)."""

    protocol: str
    components: dict[str, float] = field(default_factory=dict)
    total: float = 0.0
    samples: int = 0

    def component(self, name: str) -> float:
        """Value of one component (0 if absent)."""
        return self.components.get(name, 0.0)

    def overhead_versus(self, baseline: "LatencyBreakdown") -> float:
        """Relative latency overhead versus ``baseline`` (e.g. 0.16 for +16 %)."""
        if baseline.total <= 0:
            return 0.0
        return (self.total - baseline.total) / baseline.total

    def as_row(self) -> dict[str, float]:
        """All components plus the total, in Figure 8 order."""
        row = {name: round(self.component(name), 1) for name in COMPONENT_ORDER}
        row["total"] = round(self.total, 1)
        return row


class LatencyComponentStream:
    """Streaming accumulator of the trace-derived latency components.

    Subscribes to ``as_prepare``/``as_phase``/``tm_log`` and maintains the
    running mean durations :func:`breakdown_from_run` otherwise re-scans the
    stored trace for.  Attach at build time (the deployments do) and pass to
    ``breakdown_from_run(..., components=stream)``; works under any trace
    retention policy.
    """

    _PHASES = ("regA_write", "regD_write")
    _LOGS = ("start", "outcome")

    def __init__(self, trace: TraceRecorder):
        self.prepare_events = 0
        self._sums: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        self._unsubscribers = [
            trace.subscribe("as_prepare", self._on_prepare),
            trace.subscribe("as_phase", self._on_phase),
            trace.subscribe("tm_log", self._on_log),
        ]

    def _on_prepare(self, event) -> None:
        self.prepare_events += 1

    def _accumulate(self, bucket: str, event) -> None:
        self._sums[bucket] = self._sums.get(bucket, 0.0) + event.get("duration", 0.0)
        self._counts[bucket] = self._counts.get(bucket, 0) + 1

    def _on_phase(self, event) -> None:
        phase = event.get("phase")
        if phase in self._PHASES:
            self._accumulate(f"phase:{phase}", event)

    def _on_log(self, event) -> None:
        which = event.get("which")
        if which in self._LOGS:
            self._accumulate(f"log:{which}", event)

    def mean(self, bucket: str) -> float:
        """Mean duration of one accumulator bucket (0 when empty)."""
        count = self._counts.get(bucket, 0)
        return self._sums.get(bucket, 0.0) / count if count else 0.0

    def detach(self) -> None:
        """Stop consuming events (the accumulated means stay readable)."""
        for unsubscribe in self._unsubscribers:
            unsubscribe()
        self._unsubscribers.clear()


def breakdown_from_run(protocol: str, trace: TraceRecorder, timing: DatabaseTiming,
                       mean_latency: float, samples: int,
                       committed_requests: Optional[int] = None,
                       components: Optional[LatencyComponentStream] = None
                       ) -> LatencyBreakdown:
    """Build a :class:`LatencyBreakdown` for one protocol run.

    Parameters
    ----------
    protocol:
        Label: ``"baseline"``, ``"AR"``, ``"2PC"`` or ``"PB"``.
    trace:
        The run's trace (used for the replication/log components when no
        streaming accumulator is supplied; requires ``full`` retention then).
    timing:
        The database timing configuration used by the run.
    mean_latency:
        Mean client-observed latency over the run's committed requests.
    samples:
        Number of committed requests measured.
    committed_requests:
        Denominator for per-request averaging of trace durations; defaults to
        ``samples``.
    components:
        Optional :class:`LatencyComponentStream` subscribed at build time;
        when given, the trace is not scanned at all.
    """
    denominator = committed_requests if committed_requests else max(samples, 1)
    breakdown_components = {
        "start": timing.start,
        "end": timing.end,
        "commit": timing.commit_cpu + timing.forced_write,
        "SQL": timing.sql,
    }
    if components is not None:
        prepared = components.prepare_events > 0
        reg_a = components.mean("phase:regA_write")
        reg_d = components.mean("phase:regD_write")
        log_start = components.mean("log:start")
        log_outcome = components.mean("log:outcome")
    else:
        prepared = bool(trace.first("as_prepare"))
        reg_a = _mean_duration(trace, "as_phase", phase="regA_write")
        reg_d = _mean_duration(trace, "as_phase", phase="regD_write")
        log_start = _mean_duration(trace, "tm_log", which="start")
        log_outcome = _mean_duration(trace, "tm_log", which="outcome")
    breakdown_components["prepare"] = \
        (timing.prepare_cpu + timing.forced_write) if prepared else 0.0
    breakdown_components["log-start"] = reg_a if reg_a > 0 else log_start
    breakdown_components["log-outcome"] = reg_d if reg_d > 0 else log_outcome

    named = sum(breakdown_components.values())
    breakdown_components["other"] = max(mean_latency - named, 0.0)
    return LatencyBreakdown(protocol=protocol, components=breakdown_components,
                            total=mean_latency, samples=denominator)


def _mean_duration(trace: TraceRecorder, category: str, **filters) -> float:
    total = count = 0
    for event in trace.select(category, **filters):
        total += event.get("duration", 0.0)
        count += 1
    return total / count if count else 0.0


@dataclass
class LatencyTable:
    """A Figure 8 style table: one column per protocol."""

    columns: list[LatencyBreakdown] = field(default_factory=list)
    baseline_name: str = "baseline"

    def add(self, breakdown: LatencyBreakdown) -> None:
        """Add one protocol column."""
        self.columns.append(breakdown)

    def column(self, protocol: str) -> Optional[LatencyBreakdown]:
        """Look up a column by protocol name."""
        for breakdown in self.columns:
            if breakdown.protocol == protocol:
                return breakdown
        return None

    def overheads(self) -> dict[str, float]:
        """Relative overhead of every column versus the baseline column."""
        baseline = self.column(self.baseline_name)
        if baseline is None:
            return {}
        return {b.protocol: b.overhead_versus(baseline) for b in self.columns}

    def to_table(self) -> str:
        """Fixed-width text rendering in the layout of the paper's Figure 8."""
        protocols = [b.protocol for b in self.columns]
        width = max(12, *(len(p) + 2 for p in protocols))
        header = "protocol".ljust(14) + "".join(p.rjust(width) for p in protocols)
        lines = [header]
        for name in COMPONENT_ORDER:
            row = name.ljust(14)
            for breakdown in self.columns:
                row += f"{breakdown.component(name):.1f}".rjust(width)
            lines.append(row)
        total_row = "total".ljust(14)
        for breakdown in self.columns:
            total_row += f"{breakdown.total:.1f}".rjust(width)
        lines.append(total_row)
        overhead_row = "cost of rel.".ljust(14)
        overheads = self.overheads()
        for breakdown in self.columns:
            overhead = overheads.get(breakdown.protocol, 0.0)
            overhead_row += f"+{overhead * 100:.0f}%".rjust(width) if overhead > 0 \
                else "0%".rjust(width)
        lines.append(overhead_row)
        return "\n".join(lines)
