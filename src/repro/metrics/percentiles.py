"""Shared latency-percentile helpers.

Every place that summarises a latency sample (the load generators, the
scenario runner, the figure harnesses, the sweep tables) uses the same
linear-interpolation percentile so the numbers are comparable across layers.
The previous nearest-rank rule jumped between samples; linear interpolation
(the same method as ``statistics.quantiles(..., method="inclusive")`` and
numpy's default) changes continuously with the data and is exact at the
sample points.
"""

from __future__ import annotations

from typing import Iterable, Sequence

P50 = 0.50
P95 = 0.95
P99 = 0.99

SUMMARY_FRACTIONS = (P50, P95, P99)


def _interpolate(ordered: Sequence[float], fraction: float) -> float:
    """Rank interpolation over an already-sorted sample."""
    if not ordered:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"percentile fraction must be within [0, 1], got {fraction}")
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    weight = rank - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of ``values`` (``fraction`` in [0, 1]).

    Returns 0.0 for an empty sample.  The rank ``fraction * (n - 1)`` is
    interpolated between the two neighbouring order statistics, so
    ``percentile(v, 0.0) == min(v)`` and ``percentile(v, 1.0) == max(v)``.
    """
    return _interpolate(sorted(values), fraction)


def summarise(values: Sequence[float],
              fractions: Iterable[float] = SUMMARY_FRACTIONS) -> dict[str, float]:
    """The standard percentile summary, keyed ``p50``/``p95``/``p99``.

    One sort is shared across all requested fractions.
    """
    ordered = sorted(values)
    return {f"p{round(fraction * 100):d}": _interpolate(ordered, fraction)
            for fraction in fractions}
