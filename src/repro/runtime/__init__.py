"""Runtime backends: the kernel seam under every deployment.

Every protocol in this repository is written against a narrow *kernel*
surface -- spawn/sleep/receive/timers/rng/now -- that :mod:`repro.sim`
implements with a discrete-event scheduler.  This package makes that seam
explicit (:class:`~repro.runtime.base.Kernel`) and provides a second
implementation (:class:`~repro.runtime.loop.AsyncioKernel` plus
:class:`~repro.runtime.tcp.TcpTransport`) that runs the *same unmodified
protocol generators* on an asyncio event loop with wall-clock timers, the
processes exchanging length-prefixed JSON frames over real TCP sockets.

Which backend a scenario uses is selected in the DSN::

    etx://a3.d1.c4?runtime=sim                        # default: simulator
    etx://a3.d1.c4?runtime=asyncio&pace=0.2           # real TCP on localhost
    etx://a3.d1.c4?runtime=asyncio&host=10.0.0.5&port=7000

Both backends feed the same trace bus, so the online spec monitor and the
run statistics work unchanged on real runs.
"""

from repro.runtime.base import (
    DEFAULT_HOST,
    KNOWN_RUNTIMES,
    RUNTIME_ASYNCIO,
    RUNTIME_SIM,
    Kernel,
    RuntimeSpec,
    create_kernel,
    create_network,
)

__all__ = [
    "DEFAULT_HOST",
    "KNOWN_RUNTIMES",
    "RUNTIME_ASYNCIO",
    "RUNTIME_SIM",
    "Kernel",
    "RuntimeSpec",
    "create_kernel",
    "create_network",
]
