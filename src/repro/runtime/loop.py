"""AsyncioKernel: the wall-clock implementation of the kernel seam.

The simulator advances a virtual clock by popping a heap; this kernel lets an
asyncio event loop advance the wall clock and maps the seam onto it:

* ``now`` is wall time since kernel creation, rescaled to *virtual
  milliseconds* by the ``pace`` factor (``pace`` wall seconds per virtual
  second), so protocol timeouts tuned for the simulator keep their meaning;
* ``schedule`` becomes ``loop.call_later``; cancelling a protocol timer
  cancels the underlying loop timer;
* ``run``/``run_until`` drive the loop with ``run_until_complete`` around a
  sleep or a predicate poller, so the workload generators' blocking call
  sites work unchanged.

Protocol generators stay exactly what they are under the simulator --
generator coroutines resumed by callbacks.  The only native asyncio tasks
are infrastructure pumps (TCP readers/writers) spawned via
:meth:`AsyncioKernel.spawn_task`.

A wall-clock budget (``max_wall`` seconds per ``run``/``run_until`` call,
default 120) turns a hung loop into a loud :class:`SimulationLimitExceeded`
instead of a stalled CI job.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Coroutine, Optional

from repro.runtime.base import Kernel
from repro.sim.errors import InvalidScheduling, SimulationLimitExceeded

#: Wall-clock seconds between predicate polls in :meth:`AsyncioKernel.run_until`.
_POLL_INTERVAL = 0.002


class WallEvent:
    """Cancellable handle for a timer scheduled on the event loop.

    Mirrors the surface of :class:`repro.sim.scheduler.ScheduledEvent` that
    process/thread code relies on (``cancel``, ``cancelled``, ``time``,
    ``name``).
    """

    __slots__ = ("time", "name", "cancelled", "_handle")

    def __init__(self, time: float, name: str, handle: asyncio.TimerHandle):
        self.time = time
        self.name = name
        self.cancelled = False
        self._handle = handle

    def cancel(self) -> bool:
        """Prevent the callback from firing.

        Returns ``True`` on the first effective cancel, ``False`` on repeat
        cancels -- the same contract as
        :meth:`repro.sim.scheduler.ScheduledEvent.cancel` (a wall clock
        cannot tell "already fired" apart from "in flight", so only the
        repeat-cancel half of the no-op contract is observable here).
        """
        if self.cancelled:
            return False
        self.cancelled = True
        self._handle.cancel()
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<WallEvent {self.name!r} at {self.time:.3f} ({state})>"


class AsyncioKernel(Kernel):
    """Kernel backed by a private asyncio event loop and the wall clock."""

    realtime = True

    def __init__(self, seed: int = 0, pace: float = 1.0,
                 max_wall: Optional[float] = 120.0):
        if pace <= 0:
            raise ValueError(f"pace must be > 0, got {pace}")
        self.pace = pace
        #: Wall-clock budget (seconds) for a single run()/run_until() call;
        #: ``None`` disables the guard (used by long-lived ``serve``).
        self.max_wall = max_wall
        self._loop = asyncio.new_event_loop()
        self._epoch = self._loop.time()
        self._events_processed = 0
        self._pending = 0
        self._tasks: set[asyncio.Task] = set()
        self._bootstraps: list[Callable[[], Coroutine]] = []
        self._closers: list[Callable[[], None]] = []
        self._closed = False
        self._init_kernel(seed, None, lambda: self.now)

    # ------------------------------------------------------------------ clock

    @property
    def now(self) -> float:
        """Virtual milliseconds elapsed since kernel creation."""
        return (self._loop.time() - self._epoch) * 1000.0 / self.pace

    def _wall_delay(self, virtual_ms: float) -> float:
        return virtual_ms * self.pace / 1000.0

    # ------------------------------------------------------------ scheduling

    @property
    def pending_events(self) -> int:
        """Number of scheduled-but-not-fired kernel timers."""
        return self._pending

    @property
    def events_processed(self) -> int:
        """Number of kernel timer callbacks executed so far."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[[], None],
                 name: str = "event") -> WallEvent:
        """Schedule ``callback`` to run ``delay`` virtual ms from now."""
        if delay < 0:
            raise InvalidScheduling(f"negative delay {delay!r} for event {name!r}")
        event: WallEvent

        def fire() -> None:
            self._pending -= 1
            if event.cancelled:
                return
            self._events_processed += 1
            callback()

        self._pending += 1
        handle = self._loop.call_later(self._wall_delay(delay), fire)
        event = WallEvent(self.now + delay, name, handle)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None],
                    name: str = "event") -> WallEvent:
        """Schedule ``callback`` at absolute virtual time ``time``.

        Unlike the simulator, a wall clock keeps moving between computing a
        target time and scheduling it, so a slightly-past ``time`` is clamped
        to "as soon as possible" rather than rejected.
        """
        return self.schedule(max(0.0, time - self.now), callback, name)

    def call_soon(self, callback: Callable[[], None], name: str = "soon") -> WallEvent:
        """Schedule ``callback`` on the next loop iteration."""
        return self.schedule(0.0, callback, name)

    # ----------------------------------------------------- native-task support

    def spawn_task(self, coro: Coroutine) -> asyncio.Task:
        """Run a native asyncio coroutine (transport pumps); tracked for close()."""
        task = self._loop.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    def add_bootstrap(self, factory: Callable[[], Coroutine]) -> None:
        """Register a coroutine to await before the first run (e.g. TCP binds)."""
        self._bootstraps.append(factory)

    def add_closer(self, closer: Callable[[], None]) -> None:
        """Register a synchronous shutdown hook invoked by :meth:`close`."""
        self._closers.append(closer)

    def _ensure_bootstrapped(self) -> None:
        while self._bootstraps:
            factory = self._bootstraps.pop(0)
            self._loop.run_until_complete(factory())

    # --------------------------------------------------------------- running

    def run(self, until: Optional[float] = None, max_events: int = 5_000_000) -> float:
        """Let the loop run until virtual time ``until`` (or just flush, if None).

        ``max_events`` is accepted for interface parity; the livelock guard
        under a wall clock is the ``max_wall`` budget instead.
        """
        self._ensure_bootstrapped()
        if until is None:
            self._loop.run_until_complete(asyncio.sleep(0))
            return self.now
        remaining = self._wall_delay(until - self.now)
        if remaining > 0:
            if self.max_wall is not None and remaining > self.max_wall:
                raise SimulationLimitExceeded(
                    f"run until t={until:.0f} needs {remaining:.1f}s of wall time, "
                    f"over the {self.max_wall:.0f}s budget (lower pace or raise max_wall)"
                )
            self._loop.run_until_complete(asyncio.sleep(remaining))
        return self.now

    def run_until(self, predicate: Callable[[], bool], *, until: Optional[float] = None,
                  max_events: int = 5_000_000) -> bool:
        """Poll ``predicate`` while the loop runs; stop at ``until`` or budget."""
        self._ensure_bootstrapped()
        if predicate():
            return True
        budget_deadline = (self._loop.time() + self.max_wall
                           if self.max_wall is not None else None)

        async def wait() -> bool:
            while True:
                if predicate():
                    return True
                if until is not None and self.now >= until:
                    return predicate()
                if budget_deadline is not None and self._loop.time() >= budget_deadline:
                    raise SimulationLimitExceeded(
                        f"run_until exceeded the {self.max_wall:.0f}s wall-clock budget "
                        "(possible hang; lower pace or raise max_wall)"
                    )
                await asyncio.sleep(_POLL_INTERVAL)

        return self._loop.run_until_complete(wait())

    # ---------------------------------------------------------------- closing

    def close(self) -> None:
        """Shut down transports and the loop; safe to call more than once."""
        if self._closed:
            return
        self._closed = True
        for closer in self._closers:
            closer()
        tasks = [task for task in self._tasks if not task.done()]
        for task in tasks:
            task.cancel()
        if tasks:
            self._loop.run_until_complete(
                asyncio.gather(*tasks, return_exceptions=True))
        self._loop.run_until_complete(self._loop.shutdown_asyncgens())
        self._loop.close()
