"""Name -> TCP endpoint resolution for the asyncio backend.

Every OS process participating in a deployment derives the *same* endpoint
map from the scenario DSN alone -- no discovery service, no config file: the
process list is ordered (application servers, then databases, then clients)
and process *i* listens on ``base_port + i`` of the shared host.  A base
port of 0 means "bind ephemeral ports", which only works when all processes
live in one OS process (the map learns each actual port at bind time).
"""

from __future__ import annotations

from repro.runtime.base import MAX_PORT


class EndpointMap:
    """Deterministic mapping from process names to ``(host, port)`` pairs."""

    def __init__(self, assignments: dict[str, tuple[str, int]]):
        self._assignments = dict(assignments)

    @classmethod
    def for_names(cls, names: list[str], host: str, base_port: int) -> "EndpointMap":
        """Endpoint per name: ``base_port + index``, or all-ephemeral when 0."""
        if base_port:
            highest = base_port + len(names) - 1
            if highest > MAX_PORT:
                raise ValueError(
                    f"port range {base_port}..{highest} for {len(names)} processes "
                    f"exceeds {MAX_PORT}; pick a lower base port"
                )
        return cls({name: (host, base_port + i if base_port else 0)
                    for i, name in enumerate(names)})

    def get(self, name: str) -> tuple[str, int]:
        """The endpoint of ``name`` (port 0 until an ephemeral bind happened)."""
        try:
            return self._assignments[name]
        except KeyError:
            raise KeyError(f"no endpoint for unknown process {name!r}") from None

    def assign(self, name: str, host: str, port: int) -> None:
        """Record the actual endpoint once an ephemeral listener is bound."""
        self._assignments[name] = (host, port)

    def names(self) -> list[str]:
        """All mapped process names, in deployment order."""
        return list(self._assignments)

    def table(self) -> list[tuple[str, str, int]]:
        """``(name, host, port)`` rows for operator-facing output."""
        return [(name, host, port) for name, (host, port) in self._assignments.items()]
