"""The kernel seam: the runtime interface every protocol component uses.

:class:`Kernel` names the exact surface that :class:`repro.sim.process.Process`,
:class:`repro.sim.process.Thread`, the network/transport layer and the
workload generators consume: a clock (``now``), one-shot timers
(``schedule``/``schedule_at``/``call_soon``), run loops (``run``/``run_until``),
deterministic per-stream RNGs (``rng``), the shared trace bus (``trace``) and
scoped id counters.  Protocol generators never see anything below this
surface, which is what lets the *same* generator code run on either backend:

* :class:`repro.sim.scheduler.Simulator` -- virtual time, deterministic
  discrete-event execution (``realtime = False``);
* :class:`repro.runtime.loop.AsyncioKernel` -- wall-clock time on an asyncio
  event loop, timers backed by ``loop.call_later`` (``realtime = True``).

:class:`RuntimeSpec` is the validated, immutable description of which backend
a scenario runs on (parsed from the ``runtime``/``host``/``port``/``pace``
DSN params), and :func:`create_kernel`/:func:`create_network` are the
factories deployments use to build the matching kernel + transport pair.
"""

from __future__ import annotations

import os
import random
import zlib
from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # imported lazily at runtime: sim.process imports this module
    from repro.sim.tracing import TraceRecorder

RUNTIME_SIM = "sim"
RUNTIME_ASYNCIO = "asyncio"
KNOWN_RUNTIMES = (RUNTIME_SIM, RUNTIME_ASYNCIO)

DEFAULT_HOST = "127.0.0.1"

MAX_PORT = 65535


def stream_seed(seed: int, stream: str) -> int:
    """Seed of the named per-stream RNG, derived from the global ``seed``.

    Uses CRC-32 rather than ``hash()``: Python salts string hashing with
    ``PYTHONHASHSEED``, so a hash-derived seed would differ between
    interpreter invocations and silently break cross-process reproducibility
    (e.g. a sweep worker replaying a scenario another process ran).
    """
    return zlib.crc32(f"{seed}\x00{stream}".encode("utf-8")) & 0xFFFFFFFF


class Kernel:
    """Abstract runtime kernel: clock, timers, RNG streams, trace bus.

    Subclasses must provide ``now`` (a float attribute or property, in
    virtual milliseconds), ``schedule``, ``schedule_at``, ``call_soon``,
    ``run``, ``run_until``, ``pending_events`` and ``events_processed``.
    The id-counter and RNG plumbing is shared here so both backends draw
    identical deterministic streams for a given seed.
    """

    #: Whether time advances on its own (wall clock) or only when the kernel
    #: processes events (virtual clock).  Tests use this to skip assertions
    #: about exact timestamps under a wall clock.
    realtime: bool = False

    seed: int
    trace: "TraceRecorder"

    def _init_kernel(self, seed: int, trace: "Optional[TraceRecorder]",
                     clock: Callable[[], float]) -> None:
        from repro.sim.tracing import TraceRecorder

        self.seed = seed
        self.trace = trace if trace is not None else TraceRecorder(clock=clock)
        self.trace.bind_clock(clock)
        self._rng_streams: dict[str, random.Random] = {}
        self._thread_ids = 0
        self._message_ids = 0

    # ------------------------------------------------------------ id counters

    def next_thread_id(self) -> int:
        """Next process-thread identifier, scoped to this kernel.

        Scoping the counters to the kernel (rather than module globals)
        keeps back-to-back runs in one interpreter byte-identical: run N+1
        starts from the same identifiers as run N did, regardless of what ran
        before it.
        """
        self._thread_ids += 1
        return self._thread_ids

    def next_message_id(self) -> int:
        """Next network-message identifier, scoped to this kernel."""
        self._message_ids += 1
        return self._message_ids

    # ------------------------------------------------------------------ RNG

    def rng(self, stream: str) -> random.Random:
        """Return the named deterministic random stream, creating it on first use."""
        if stream not in self._rng_streams:
            self._rng_streams[stream] = random.Random(stream_seed(self.seed, stream))
        return self._rng_streams[stream]

    # ------------------------------------------------------------ scheduling

    def schedule(self, delay: float, callback: Callable[[], None],
                 name: str = "event") -> Any:
        """Run ``callback`` after ``delay`` virtual ms; returns a cancellable handle.

        The handle's ``cancel()`` returns ``True`` when it stopped a live
        event and ``False`` as a documented no-op when the event already
        fired or was already cancelled -- protocol code may always cancel a
        stale handle (an ack racing the retransmit timer it cancels) without
        checking state first.
        """
        raise NotImplementedError

    def schedule_at(self, time: float, callback: Callable[[], None],
                    name: str = "event") -> Any:
        """Run ``callback`` at absolute virtual time ``time``."""
        raise NotImplementedError

    def schedule_call(self, delay: float, callback: Callable, arg: Any,
                      name: str = "event") -> Any:
        """Run ``callback(arg)`` after ``delay`` virtual ms.

        The argument-carrying variant of :meth:`schedule` used by the
        network's per-message delivery path.  Handles returned by this
        method must not be retained past the event's dispatch: kernels may
        recycle fired events through a free list, so only cancel-before-fire
        is supported.  The default wraps the argument in a ``partial``;
        :class:`repro.sim.scheduler.Simulator` overrides it with an
        allocation-free implementation.
        """
        return self.schedule(delay, partial(callback, arg), name)

    def call_soon(self, callback: Callable[[], None], name: str = "soon") -> Any:
        """Run ``callback`` as soon as possible, after already-queued work."""
        raise NotImplementedError

    def call_soon_call(self, callback: Callable, arg: Any, name: str = "soon") -> Any:
        """Run ``callback(arg)`` as soon as possible.

        Argument-carrying variant of :meth:`call_soon` with the same handle
        caveat as :meth:`schedule_call`: fired events may be recycled, so
        the handle supports cancel-before-fire only.
        """
        return self.call_soon(partial(callback, arg), name)

    # --------------------------------------------------------------- running

    def run(self, until: Optional[float] = None, max_events: int = 5_000_000) -> float:
        """Process events until drained / ``until``; returns the stop time."""
        raise NotImplementedError

    def run_until(self, predicate: Callable[[], bool], *, until: Optional[float] = None,
                  max_events: int = 5_000_000) -> bool:
        """Process events until ``predicate()`` holds or the horizon passes."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (sockets, loops).  Idempotent; no-op here."""


@dataclass(frozen=True)
class RuntimeSpec:
    """Validated description of the runtime backend a scenario uses.

    Attributes
    ----------
    kind:
        ``"sim"`` or ``"asyncio"``.
    host / port:
        Endpoint base for the asyncio backend.  ``host`` defaults to
        loopback; ``port == 0`` means every process binds an ephemeral port
        (fine for a single OS process, rejected for distributed serving).
        With an explicit base port, process *i* (in deployment order: app
        servers, then databases, then clients) listens on ``port + i``.
    pace:
        Wall-clock seconds per virtual second for the asyncio backend.
        ``1.0`` is real time; ``0.2`` runs protocol timers five times
        faster (useful to keep wall-clock tests short).
    only:
        When non-empty, this OS process hosts only the named subset of the
        deployment (``python -m repro serve`` / distributed ``run``); all
        other names resolve to remote TCP endpoints.
    """

    kind: str = RUNTIME_SIM
    host: str = ""
    port: int = 0
    pace: float = 1.0
    only: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in KNOWN_RUNTIMES:
            raise ValueError(
                f"unknown runtime {self.kind!r} (expected one of {', '.join(KNOWN_RUNTIMES)})"
            )
        if not 0 <= self.port <= MAX_PORT:
            raise ValueError(f"port must be in [0, {MAX_PORT}], got {self.port}")
        if self.pace <= 0:
            raise ValueError(f"pace must be > 0, got {self.pace}")

    @property
    def distributed(self) -> bool:
        """Whether this OS process hosts only a subset of the deployment."""
        return bool(self.only)

    def hosts(self, name: str) -> bool:
        """Whether the process named ``name`` runs in this OS process."""
        return not self.only or name in self.only


def create_kernel(spec: RuntimeSpec, seed: int = 0) -> Kernel:
    """Build the kernel for ``spec`` (a :class:`Simulator` or an asyncio loop).

    For the ``sim`` backend, the ``REPRO_KERNEL`` environment variable picks
    the event-queue implementation: ``wheel`` (default) is the timer-wheel
    kernel, ``heap`` is the frozen pre-wheel binary-heap kernel kept in
    :mod:`repro.sim.legacy` as the trace-equivalence oracle and benchmark
    baseline.  Both honour the same seam contract, so every scenario is
    byte-identical under either value.
    """
    if spec.kind == RUNTIME_SIM:
        kind = os.environ.get("REPRO_KERNEL", "wheel")
        if kind == "heap":
            from repro.sim.legacy import HeapSimulator

            return HeapSimulator(seed=seed)
        if kind != "wheel":
            raise ValueError(
                f"unknown REPRO_KERNEL {kind!r} (expected 'wheel' or 'heap')"
            )
        from repro.sim.scheduler import Simulator

        return Simulator(seed=seed)
    from repro.runtime.loop import AsyncioKernel

    return AsyncioKernel(seed=seed, pace=spec.pace)


def create_network(spec: RuntimeSpec, kernel: Kernel, *, latency: Any = None,
                   loss_probability: float = 0.0,
                   process_names: Optional[list[str]] = None) -> Any:
    """Build the transport for ``spec``: simulated fabric or real TCP.

    ``process_names`` fixes the deterministic name -> port assignment for the
    TCP backend (deployment order); it is ignored by the simulator backend.
    """
    if spec.kind == RUNTIME_SIM:
        if spec.only:
            # A simulated deployment restricted to a subset of its processes
            # is one shard of a parallel run: remote sends park in an outbox
            # for the round loop instead of being delivered in-kernel.
            from repro.sim.parallel import ShardNetwork

            return ShardNetwork(kernel, latency=latency,
                                loss_probability=loss_probability,
                                local_names=set(spec.only))
        from repro.net.network import Network

        return Network(kernel, latency=latency, loss_probability=loss_probability)
    from repro.runtime.endpoints import EndpointMap
    from repro.runtime.tcp import TcpTransport

    endpoints = EndpointMap.for_names(process_names or [], spec.host or DEFAULT_HOST,
                                      spec.port)
    return TcpTransport(kernel, endpoints, latency=latency,
                        loss_probability=loss_probability,
                        local_names=set(spec.only) if spec.only else None)
