"""TcpTransport: the real-socket implementation of the message fabric.

Subclasses :class:`repro.net.network.Network` and replaces only the
``_transmit`` seam: everything above it (destination validation, id stamping,
traffic counters, partition/loss drops, ``msg_send`` tracing) is shared with
the simulated fabric, so the trace bus and :class:`NetworkStats` mean the
same thing in both backends.

Topology: every *local* process gets its own ``asyncio`` TCP server (bound
from the deterministic :class:`~repro.runtime.endpoints.EndpointMap`), and
each destination gets one pooled outbound connection fed by a writer pump
task.  Frames are 4-byte big-endian length prefixes followed by
:meth:`Message.to_wire` JSON bodies.  All traffic -- including between
processes in the same OS process -- goes through real sockets; that is the
point of this backend.

Failure semantics mirror the paper's fair-lossy channels: a frame that
cannot be written (peer not yet listening, connection reset, crashed
destination) is *dropped*, never buffered indefinitely -- recovering the
message is the job of the protocol's retransmission logic, exactly as under
simulated loss.  A process crash closes its live connections (the TCP
analogue of losing volatile state); reconnection is lazy on the next send.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Optional

from repro.net.message import Message, WireFormatError
from repro.net.network import Network
from repro.runtime.endpoints import EndpointMap
from repro.runtime.loop import AsyncioKernel

_FRAME_HEADER = struct.Struct(">I")
_MAX_FRAME = 16 * 1024 * 1024

#: Wall-clock seconds between connection attempts to a not-yet-listening peer.
_RECONNECT_INTERVAL = 0.05
#: Wall-clock seconds to keep retrying a connection before dropping frames.
_CONNECT_TIMEOUT = 10.0


class _Link:
    """One pooled outbound connection: a frame queue and its pump task."""

    __slots__ = ("queue", "writer", "task")

    def __init__(self) -> None:
        self.queue: asyncio.Queue[bytes] = asyncio.Queue()
        self.writer: Optional[asyncio.StreamWriter] = None
        self.task: Optional[asyncio.Task] = None


class TcpTransport(Network):
    """Message fabric carrying every send over a localhost/LAN TCP socket."""

    def __init__(self, kernel: AsyncioKernel, endpoints: EndpointMap, *,
                 latency=None, loss_probability: float = 0.0,
                 local_names: Optional[set[str]] = None):
        super().__init__(kernel, latency=latency, loss_probability=loss_probability)
        self.kernel = kernel
        self.endpoints = endpoints
        self._local_names = local_names
        self._servers: dict[str, asyncio.base_events.Server] = {}
        self._links: dict[str, _Link] = {}
        self._inbound: dict[str, set[asyncio.StreamWriter]] = {}
        self._closed = False
        kernel.add_bootstrap(self._start_serving)
        kernel.add_closer(self.close)

    def hosts(self, name: str) -> bool:
        """Whether ``name`` executes in this OS process."""
        return self._local_names is None or name in self._local_names

    # ---------------------------------------------------------------- serving

    async def _start_serving(self) -> None:
        """Bind one TCP server per local process (kernel bootstrap hook)."""
        for name in self.processes:
            if not self.hosts(name) or name in self._servers:
                continue
            host, port = self.endpoints.get(name)
            server = await asyncio.start_server(
                lambda reader, writer, name=name: self._accept(name, reader, writer),
                host, port)
            # An ephemeral bind (port 0) fixes the real port only now; record
            # it so local pumps can connect.
            actual_port = server.sockets[0].getsockname()[1]
            self.endpoints.assign(name, host, actual_port)
            self._servers[name] = server

    def _accept(self, name: str, reader: asyncio.StreamReader,
                writer: asyncio.StreamWriter) -> None:
        self.kernel.spawn_task(self._read_frames(name, reader, writer))

    async def _read_frames(self, name: str, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self._inbound.setdefault(name, set()).add(writer)
        try:
            while True:
                header = await reader.readexactly(_FRAME_HEADER.size)
                (length,) = _FRAME_HEADER.unpack(header)
                if length > _MAX_FRAME:
                    raise WireFormatError(f"frame of {length} bytes exceeds the limit")
                body = await reader.readexactly(length)
                message = Message.from_wire(body)
                destination = message.destination
                if not self.hosts(destination):
                    # Misrouted frame for a process another host runs; drop.
                    continue
                self._deliver(message)
        except (asyncio.IncompleteReadError, ConnectionError, OSError, WireFormatError):
            pass
        finally:
            self._inbound.get(name, set()).discard(writer)
            writer.close()

    # --------------------------------------------------------------- sending

    def _transmit(self, message: Message, destination: str, tracing: bool) -> None:
        """Frame the message and hand it to the destination's writer pump.

        The latency model is unused here: the real network provides the
        latency.  Loss and partitions were already applied by ``send``.
        """
        frame = message.to_wire()
        link = self._links.get(destination)
        if link is None:
            link = self._links[destination] = _Link()
            link.task = self.kernel.spawn_task(self._pump(destination, link))
        link.queue.put_nowait(_FRAME_HEADER.pack(len(frame)) + frame)

    async def _pump(self, destination: str, link: _Link) -> None:
        while True:
            frame = await link.queue.get()
            if link.writer is None:
                link.writer = await self._connect(destination)
                if link.writer is None:
                    self.stats.dropped_dest_down += 1
                    continue
            try:
                link.writer.write(frame)
                await link.writer.drain()
            except (ConnectionError, OSError):
                # Fair-lossy: the frame is lost, the connection is re-opened
                # lazily for the next one (retransmission recovers the data).
                link.writer = None
                self.stats.dropped_dest_down += 1

    async def _connect(self, destination: str) -> Optional[asyncio.StreamWriter]:
        deadline = self.kernel._loop.time() + _CONNECT_TIMEOUT
        while True:
            host, port = self.endpoints.get(destination)
            if port:
                try:
                    _, writer = await asyncio.open_connection(host, port)
                    return writer
                except (ConnectionError, OSError):
                    pass
            # Peer not bound yet (startup race, recovery, port still
            # ephemeral-unknown): retry until the timeout, then give up.
            if self.kernel._loop.time() >= deadline:
                return None
            await asyncio.sleep(_RECONNECT_INTERVAL)

    # ------------------------------------------------------------ crash hooks

    def on_process_crash(self, name: str) -> None:
        """Drop the crashed process's live connections (volatile-state loss)."""
        for writer in list(self._inbound.get(name, ())):
            writer.close()
        link = self._links.get(name)
        if link is not None and link.writer is not None:
            link.writer.close()
            link.writer = None

    # ---------------------------------------------------------------- closing

    def close(self) -> None:
        """Close servers and connections; pump/reader tasks die with the kernel."""
        if self._closed:
            return
        self._closed = True
        for server in self._servers.values():
            server.close()
        for link in self._links.values():
            if link.writer is not None:
                link.writer.close()
        for writers in self._inbound.values():
            for writer in list(writers):
                writer.close()
