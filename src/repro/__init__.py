"""Reproduction of *Implementing e-Transactions with Asynchronous Replication*.

This package re-implements, from scratch and on top of a deterministic
discrete-event simulator, the exactly-once transaction (e-Transaction) protocol
of Frolund and Guerraoui (DSN 2000) together with every substrate the paper
depends on:

* ``repro.sim`` -- discrete-event simulation kernel (virtual time, processes,
  crash/recovery, coroutine threads, tracing).
* ``repro.net`` -- message-passing network with latency, loss, partitions and
  the reliable-channel abstraction (retransmission + duplicate suppression).
* ``repro.failure`` -- failure detectors (perfect, eventually perfect,
  timeout-based) and fault-injection schedules.
* ``repro.consensus`` -- Chandra-Toueg rotating-coordinator consensus.
* ``repro.registers`` -- write-once registers built on consensus.
* ``repro.storage`` -- stable storage, write-ahead log, lock manager,
  transactional key-value store and an XA-style resource manager.
* ``repro.core`` -- the e-Transaction protocol itself (client, application
  server, database server) and an executable version of its specification.
* ``repro.baselines`` -- the comparison protocols (unreliable baseline,
  presumed-nothing 2PC, primary-backup replication).
* ``repro.workload`` -- bank-account and travel-booking workloads.
* ``repro.metrics`` -- latency-component accounting and communication-step
  counting used to regenerate the paper's figures.
* ``repro.experiments`` -- one harness per table/figure plus ablations.
* ``repro.api`` -- the unified scenario API: declarative :class:`Scenario`
  objects with a DSN string form, a protocol-driver registry, and
  ``run_scenario`` -- the single entry point every experiment, example and
  CLI command builds through.

Quickstart::

    from repro import api
    print(api.run_scenario("etx://a3.d1.c1?fd=heartbeat&seed=7").summary())
"""

from repro.version import __version__

__all__ = ["__version__"]
