"""Single-copy reference implementation of wo-register arrays.

:class:`LocalRegisterArray` keeps all register cells in one shared in-memory
table (one object shared by every application server in a deployment).  It is
*wait-free and atomic by construction*, which makes it the ideal register the
paper assumes when it says "we simply assume here the existence of wait-free
wo-registers".  It is used to

* unit-test the e-Transaction protocol logic independently of consensus,
* cross-check the consensus-backed implementation in property tests
  (both must yield runs satisfying the same specification).

An optional per-operation latency makes it usable in latency experiments that
want to charge a register-access cost without running consensus.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.registers.base import BOTTOM, WriteOnceRegisterArray
from repro.sim.scheduler import Simulator
from repro.sim.waits import SimFuture


class LocalRegisterStore:
    """The shared table behind a group of :class:`LocalRegisterArray` views.

    A deployment creates one store per register array name (``"regA"``,
    ``"regD"``) and hands each application server a view onto it.
    """

    def __init__(self, sim: Simulator, name: str, operation_latency: float = 0.0):
        if operation_latency < 0:
            raise ValueError("operation_latency must be non-negative")
        self.sim = sim
        self.name = name
        self.operation_latency = operation_latency
        self._cells: dict[int, Any] = {}
        self.write_attempts = 0
        self.lost_writes = 0

    def write(self, index: int, value: Any) -> SimFuture:
        """Write-once semantics: the first write wins, later writes observe it."""
        future = SimFuture()
        self.write_attempts += 1

        def apply() -> None:
            if index not in self._cells:
                self._cells[index] = value
            else:
                self.lost_writes += 1
            self.sim.trace.record("woregister_write", "", register=self.name, index=index,
                                  requested=_short(value), stored=_short(self._cells[index]))
            future.resolve(self._cells[index])

        if self.operation_latency > 0:
            self.sim.schedule(self.operation_latency, apply, name=f"{self.name}[{index}].write")
        else:
            apply()
        return future

    def read(self, index: int) -> Any:
        return self._cells.get(index, BOTTOM)

    def known_indices(self) -> list[int]:
        return sorted(self._cells)


class LocalRegisterArray(WriteOnceRegisterArray):
    """One application server's view of a :class:`LocalRegisterStore`."""

    def __init__(self, store: LocalRegisterStore, owner: Optional[str] = None):
        self.store = store
        self.owner = owner

    def write(self, index: int, value: Any) -> SimFuture:
        return self.store.write(index, value)

    def read(self, index: int) -> Any:
        return self.store.read(index)

    def known_indices(self) -> list[int]:
        return self.store.known_indices()


def _short(value: Any) -> Any:
    return value if isinstance(value, (int, float, str, bool, tuple)) else repr(value)
