"""Write-once register (wo-register) abstraction.

Section 4 of the paper introduces wo-registers as the synchronisation
primitive of the application-server tier:

* ``write(input)`` returns either ``input`` (the caller's value was written)
  or the value some other process already wrote;
* ``read()`` returns a written value or the initial value ⊥; once a value has
  been written, repeated reads eventually return it.

The protocol uses two *arrays* of registers indexed by the result identifier
``j``: ``regA[j]`` records which application server executes result ``j`` and
``regD[j]`` records the decision (result, outcome) for ``j``.

Two implementations are provided:

* :class:`~repro.registers.consensus_backed.ConsensusRegisterArray` -- the real
  thing, one consensus instance per cell (see ``repro.consensus``);
* :class:`~repro.registers.local.LocalRegisterArray` -- a single-copy wait-free
  reference implementation used to unit-test the protocol logic in isolation
  and to cross-check the consensus-backed one in property tests.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.waits import SimFuture


class _Bottom:
    """The initial register value ⊥ (distinct from ``None`` and falsy)."""

    _instance: Optional["_Bottom"] = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __bool__(self) -> bool:
        return False


BOTTOM = _Bottom()
"""The initial (unwritten) value of every wo-register."""


class WriteOnceRegisterArray:
    """An array of wo-registers indexed by a result identifier ``j``."""

    def write(self, index: int, value: Any) -> SimFuture:
        """Attempt to write ``value`` into register ``index``.

        Returns a future resolving to the value actually held by the register
        (the caller's value, or whatever was written first).
        """
        raise NotImplementedError

    def read(self, index: int) -> Any:
        """Return the value of register ``index`` or :data:`BOTTOM`."""
        raise NotImplementedError

    def known_indices(self) -> list[int]:
        """Indices whose value is locally known (written and learned)."""
        raise NotImplementedError

    def is_written(self, index: int) -> bool:
        """Whether register ``index`` holds a (locally known) value."""
        return self.read(index) is not BOTTOM
