"""Consensus-backed wo-register arrays (the paper's construction).

Every application server holds a :class:`ConsensusRegisterArray` per logical
register array (``regA``, ``regD``).  Writing cell ``j`` proposes the value in
consensus instance ``(array_name, j)`` among the application servers; the
decided value is the register's content.  Reading returns the locally learned
decision or ⊥ -- with the guarantee (inherited from the ``decide`` broadcast
and the optional :meth:`refresh` query) that once a value is written, repeated
reads at a correct server eventually return it.
"""

from __future__ import annotations

from typing import Any

from repro.consensus.synod import ConsensusHost
from repro.registers.base import BOTTOM, WriteOnceRegisterArray
from repro.sim.waits import SimFuture


class ConsensusRegisterArray(WriteOnceRegisterArray):
    """A named array of wo-registers backed by a :class:`ConsensusHost`."""

    def __init__(self, host: ConsensusHost, array_name: str):
        self.host = host
        self.array_name = array_name

    def _instance(self, index: int):
        return (self.array_name, index)

    def write(self, index: int, value: Any) -> SimFuture:
        return self.host.propose(self._instance(index), value)

    def read(self, index: int) -> Any:
        decision = self.host.decision(self._instance(index))
        return BOTTOM if decision is None else decision

    def refresh(self, index: int) -> None:
        """Ask peers for a possibly missed decision (helps recovered servers)."""
        self.host.request_decision(self._instance(index))

    def known_indices(self) -> list[int]:
        indices = []
        for instance in self.host.decided_instances():
            if isinstance(instance, tuple) and len(instance) == 2 and instance[0] == self.array_name:
                indices.append(instance[1])
        return sorted(indices)
