"""Write-once registers (consensus-backed and local reference implementations)."""

from repro.registers.base import BOTTOM, WriteOnceRegisterArray
from repro.registers.consensus_backed import ConsensusRegisterArray
from repro.registers.local import LocalRegisterArray, LocalRegisterStore

__all__ = [
    "BOTTOM",
    "WriteOnceRegisterArray",
    "ConsensusRegisterArray",
    "LocalRegisterArray",
    "LocalRegisterStore",
]
