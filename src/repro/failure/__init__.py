"""Failure detection and fault injection."""

from repro.failure.detectors import (
    EventuallyPerfectFailureDetector,
    FailureDetector,
    HeartbeatFailureDetector,
    PerfectFailureDetector,
)
from repro.failure.injection import (
    CRASH,
    CRASH_FOR,
    FALSE_SUSPICION,
    HEAL,
    PARTITION,
    RECOVER,
    FaultAction,
    FaultSchedule,
    RandomFaultPlan,
)

__all__ = [
    "FailureDetector",
    "PerfectFailureDetector",
    "EventuallyPerfectFailureDetector",
    "HeartbeatFailureDetector",
    "FaultAction",
    "FaultSchedule",
    "RandomFaultPlan",
    "CRASH",
    "RECOVER",
    "CRASH_FOR",
    "PARTITION",
    "HEAL",
    "FALSE_SUSPICION",
]
