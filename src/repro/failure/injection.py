"""Fault injection: declarative schedules and randomised generators.

A :class:`FaultSchedule` is a list of timed :class:`FaultAction` objects
(crash, recover, crash-for-a-while, partition, heal, false suspicion) that is
applied to a deployment before a run.  The experiment harnesses use explicit
schedules to reproduce the four executions of the paper's Figure 1, and the
property-based tests use :class:`RandomFaultPlan` to generate schedules that
respect the paper's correctness assumptions (a majority of application servers
stay up, database servers always recover).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.failure.detectors import EventuallyPerfectFailureDetector
from repro.net.network import Network
from repro.sim.scheduler import Simulator

CRASH = "crash"
RECOVER = "recover"
CRASH_FOR = "crash_for"
PARTITION = "partition"
HEAL = "heal"
FALSE_SUSPICION = "false_suspicion"
RESHARD = "reshard"

_VALID_KINDS = {CRASH, RECOVER, CRASH_FOR, PARTITION, HEAL, FALSE_SUSPICION,
                RESHARD}

# Kind -> the exact ``params`` keys it takes.  Anything else is a typo that
# used to surface as a ``KeyError`` deep inside ``apply``; now it is rejected
# at construction time.
_PARAM_KEYS = {
    CRASH: frozenset(),
    RECOVER: frozenset(),
    CRASH_FOR: frozenset({"downtime"}),
    PARTITION: frozenset({"groups"}),
    HEAL: frozenset(),
    FALSE_SUSPICION: frozenset({"observer", "duration"}),
    RESHARD: frozenset({"from_count", "to_count"}),
}


def validate_downtime(downtime: Any) -> None:
    """Check a ``crash_for`` downtime (shared by FaultAction and FaultSpec)."""
    if not isinstance(downtime, (int, float)) or isinstance(downtime, bool) \
            or downtime <= 0:
        raise ValueError(f"crash_for needs a positive numeric 'downtime', "
                         f"got {downtime!r}")


def validate_suspicion(observer: Any, target: str, duration: Any) -> None:
    """Check false-suspicion parameters (shared by FaultAction and FaultSpec)."""
    if not isinstance(observer, str) or not observer:
        raise ValueError("false_suspicion needs an 'observer' process")
    if observer == target:
        raise ValueError("false_suspicion observer and target must differ")
    if not isinstance(duration, (int, float)) or isinstance(duration, bool) \
            or duration <= 0:
        raise ValueError(f"false_suspicion needs a positive numeric "
                         f"'duration', got {duration!r}")


def validate_reshard(from_count: Any, to_count: Any) -> None:
    """Check a reshard's shard counts (shared by FaultAction and FaultSpec)."""
    for label, count in (("from_count", from_count), ("to_count", to_count)):
        if not isinstance(count, int) or isinstance(count, bool) or count < 1:
            raise ValueError(f"reshard needs a positive integer {label!r}, "
                             f"got {count!r}")
    if from_count == to_count:
        raise ValueError(f"reshard from_count and to_count must differ "
                         f"(both {from_count})")


def validate_partition_groups(groups: Any) -> list[list[str]]:
    """Check a partition's group layout and return it normalised.

    Groups must be a non-empty sequence of non-empty process-name groups with
    no name appearing twice (within one group or across groups): an
    overlapping layout is ambiguous -- :meth:`Network.partition` routes by the
    first group containing the sender -- and previously only misbehaved mid-run.
    """
    if not isinstance(groups, (list, tuple)) or not groups:
        raise ValueError("partition needs at least one non-empty group")
    normalised: list[list[str]] = []
    seen: set[str] = set()
    for group in groups:
        if not isinstance(group, (list, tuple, set, frozenset)) or not group:
            raise ValueError("partition groups must be non-empty name sequences")
        members = sorted(group) if isinstance(group, (set, frozenset)) else list(group)
        for name in members:
            if not isinstance(name, str) or not name:
                raise ValueError(f"bad process name in partition group: {name!r}")
            if name in seen:
                raise ValueError(f"process {name!r} appears in two partition "
                                 "groups (overlapping layouts are ambiguous)")
            seen.add(name)
        normalised.append(members)
    return normalised


@dataclass
class FaultAction:
    """One scheduled fault.

    ``kind`` is one of the module-level constants.  ``target`` is the process
    name (or, for partitions and heals, unused).  ``params`` carries
    kind-specific data: ``downtime`` for :data:`CRASH_FOR`, ``groups`` for
    :data:`PARTITION`, ``observer``/``duration`` for :data:`FALSE_SUSPICION`.
    Kind-specific requirements are validated eagerly here, so a malformed
    action fails at construction with a clear message instead of blowing up
    mid-run inside ``apply``.
    """

    time: float
    kind: str
    target: str = ""
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.time < 0:
            raise ValueError("fault time must be non-negative")
        unknown = set(self.params) - _PARAM_KEYS[self.kind]
        if unknown:
            raise ValueError(f"fault kind {self.kind!r} does not take params "
                             f"{sorted(unknown)}")
        if self.kind in (CRASH, RECOVER, CRASH_FOR, FALSE_SUSPICION):
            if not self.target:
                raise ValueError(f"fault kind {self.kind!r} needs a target process")
        elif self.target:
            raise ValueError(f"fault kind {self.kind!r} takes no target "
                             f"(got {self.target!r})")
        if self.kind == CRASH_FOR:
            validate_downtime(self.params.get("downtime"))
        elif self.kind == PARTITION:
            if "groups" not in self.params:
                raise ValueError("partition needs a 'groups' param")
            self.params["groups"] = validate_partition_groups(self.params["groups"])
        elif self.kind == FALSE_SUSPICION:
            validate_suspicion(self.params.get("observer"), self.target,
                               self.params.get("duration"))
        elif self.kind == RESHARD:
            validate_reshard(self.params.get("from_count"),
                             self.params.get("to_count"))


class FaultSchedule:
    """An ordered collection of :class:`FaultAction` applied to a run."""

    def __init__(self, actions: Optional[Sequence[FaultAction]] = None):
        self.actions: list[FaultAction] = list(actions or [])

    # ------------------------------------------------------------ construction

    def crash(self, time: float, target: str) -> "FaultSchedule":
        """Crash ``target`` at ``time`` (no automatic recovery)."""
        self.actions.append(FaultAction(time, CRASH, target))
        return self

    def recover(self, time: float, target: str) -> "FaultSchedule":
        """Recover ``target`` at ``time``."""
        self.actions.append(FaultAction(time, RECOVER, target))
        return self

    def crash_for(self, time: float, target: str, downtime: float) -> "FaultSchedule":
        """Crash ``target`` at ``time`` and recover it ``downtime`` later."""
        self.actions.append(FaultAction(time, CRASH_FOR, target, {"downtime": downtime}))
        return self

    def partition(self, time: float, *groups: Sequence[str]) -> "FaultSchedule":
        """Partition the network into ``groups`` at ``time``."""
        self.actions.append(FaultAction(time, PARTITION, params={"groups": [list(g) for g in groups]}))
        return self

    def heal(self, time: float) -> "FaultSchedule":
        """Heal any partition at ``time``."""
        self.actions.append(FaultAction(time, HEAL))
        return self

    def false_suspicion(self, time: float, observer: str, target: str,
                        duration: float) -> "FaultSchedule":
        """Make ``observer`` falsely suspect ``target`` for ``duration`` starting at ``time``."""
        self.actions.append(FaultAction(time, FALSE_SUSPICION, target,
                                        {"observer": observer, "duration": duration}))
        return self

    def reshard(self, time: float, from_count: int, to_count: int) -> "FaultSchedule":
        """Start an online reconfiguration ``from_count`` -> ``to_count`` shards at ``time``."""
        self.actions.append(FaultAction(time, RESHARD, params={
            "from_count": from_count, "to_count": to_count}))
        return self

    def extend(self, other: "FaultSchedule") -> "FaultSchedule":
        """Append all actions of ``other``."""
        self.actions.extend(other.actions)
        return self

    def restricted_to(self, names: set[str]) -> "FaultSchedule":
        """The sub-schedule one host of a distributed run can act on locally.

        Crashes, recoveries and crash-for keep only actions targeting a local
        process; false suspicions keep only local *observers* (the suspicion
        is injected into the observer's detector).  Partitions and heals are
        kept everywhere: each host drops its own outbound cross-group
        traffic, which composes into the symmetric global partition.
        """
        kept = []
        for action in self.actions:
            if action.kind in (PARTITION, HEAL):
                kept.append(action)
            elif action.kind == FALSE_SUSPICION:
                if action.params["observer"] in names:
                    kept.append(action)
            elif action.target in names:
                kept.append(action)
        return FaultSchedule(kept)

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self):
        return iter(sorted(self.actions, key=lambda a: a.time))

    def __eq__(self, other: object) -> bool:
        """Schedules are equal when they apply the same actions in time order.

        Like other mutable value-equality containers (``list``, ``dict``),
        schedules are therefore unhashable; key by an immutable form (the
        DSN fault specs, or ``tuple(schedule.describe())``) instead.
        """
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return list(self) == list(other)

    # ----------------------------------------------------------------- apply

    def apply(self, sim: Simulator, network: Network,
              failure_detector: Optional[EventuallyPerfectFailureDetector] = None,
              reshard: Optional[Any] = None) -> None:
        """Schedule every action on ``sim`` against ``network``'s processes.

        ``reshard`` is the deployment's reconfiguration entry point, a
        ``(from_count, to_count) -> None`` callable; deployments without an
        online-reshard coordinator leave it ``None`` and reshard actions are
        rejected at apply time.
        """
        for action in self:
            self._apply_one(action, sim, network, failure_detector, reshard)

    def _apply_one(self, action: FaultAction, sim: Simulator, network: Network,
                   fd: Optional[EventuallyPerfectFailureDetector],
                   reshard: Optional[Any] = None) -> None:
        if action.kind == CRASH:
            target = network.processes[action.target]
            sim.schedule_at(action.time, target.crash, name=f"fault:crash:{action.target}")
        elif action.kind == RECOVER:
            target = network.processes[action.target]
            sim.schedule_at(action.time, target.recover, name=f"fault:recover:{action.target}")
        elif action.kind == CRASH_FOR:
            target = network.processes[action.target]
            downtime = action.params["downtime"]
            sim.schedule_at(action.time, lambda t=target, d=downtime: t.crash_for(d),
                            name=f"fault:crash_for:{action.target}")
        elif action.kind == PARTITION:
            groups = action.params["groups"]
            sim.schedule_at(action.time, lambda g=groups: network.partition(*g),
                            name="fault:partition")
        elif action.kind == HEAL:
            sim.schedule_at(action.time, network.heal_partition, name="fault:heal")
        elif action.kind == FALSE_SUSPICION:
            if fd is None:
                raise ValueError("false_suspicion requires an EventuallyPerfectFailureDetector")
            fd.inject_false_suspicion(action.params["observer"], action.target,
                                      action.time, action.params["duration"])
        elif action.kind == RESHARD:
            if reshard is None:
                raise ValueError("reshard requires a deployment with an "
                                 "online-reconfiguration coordinator")
            frm, to = action.params["from_count"], action.params["to_count"]
            sim.schedule_at(action.time, lambda f=frm, t=to: reshard(f, t),
                            name=f"fault:reshard:d{frm}->d{to}")

    def describe(self) -> list[str]:
        """Human-readable description of the schedule (for reports)."""
        lines = []
        for action in self:
            if action.kind == CRASH_FOR:
                lines.append(f"t={action.time:g}: crash {action.target} "
                             f"for {action.params['downtime']:g}")
            elif action.kind == FALSE_SUSPICION:
                lines.append(f"t={action.time:g}: {action.params['observer']} falsely suspects "
                             f"{action.target} for {action.params['duration']:g}")
            elif action.kind == PARTITION:
                lines.append(f"t={action.time:g}: partition {action.params['groups']}")
            elif action.kind == RESHARD:
                lines.append(f"t={action.time:g}: reshard "
                             f"d{action.params['from_count']}->d{action.params['to_count']}")
            else:
                lines.append(f"t={action.time:g}: {action.kind} {action.target}".rstrip())
        return lines


@dataclass
class RandomFaultPlan:
    """Parameters for generating random, assumption-respecting fault schedules.

    The generated schedules keep the paper's correctness assumptions:

    * at most a minority of application servers is ever crashed (and crashed
      application servers stay down -- the paper's crash-stop model for the
      middle tier),
    * database servers may crash at any time but always recover within
      ``db_downtime_max`` ("all database servers are good"),
    * the client may optionally crash (the spec then only requires at-most-once).
    """

    app_servers: Sequence[str]
    db_servers: Sequence[str]
    client: Optional[str] = None
    horizon: float = 2_000.0
    max_app_crashes: Optional[int] = None
    db_crash_probability: float = 0.5
    db_downtime_min: float = 20.0
    db_downtime_max: float = 150.0
    client_crash_probability: float = 0.0
    false_suspicion_probability: float = 0.3
    false_suspicion_duration: float = 40.0

    def generate(self, seed: int) -> FaultSchedule:
        """Build a deterministic random schedule for ``seed``."""
        rng = random.Random(seed)
        schedule = FaultSchedule()
        majority_bound = (len(self.app_servers) - 1) // 2
        budget = self.max_app_crashes if self.max_app_crashes is not None else majority_bound
        budget = min(budget, majority_bound)
        crashable = list(self.app_servers)
        rng.shuffle(crashable)
        for name in crashable[:budget]:
            if rng.random() < 0.7:
                schedule.crash(rng.uniform(0.0, self.horizon * 0.6), name)
        for name in self.db_servers:
            if rng.random() < self.db_crash_probability:
                start = rng.uniform(0.0, self.horizon * 0.5)
                downtime = rng.uniform(self.db_downtime_min, self.db_downtime_max)
                schedule.crash_for(start, name, downtime)
        if self.client is not None and rng.random() < self.client_crash_probability:
            schedule.crash(rng.uniform(0.0, self.horizon * 0.5), self.client)
        if len(self.app_servers) >= 2 and rng.random() < self.false_suspicion_probability:
            observer, target = rng.sample(list(self.app_servers), 2)
            schedule.false_suspicion(rng.uniform(0.0, self.horizon * 0.4), observer, target,
                                     self.false_suspicion_duration)
        return schedule
