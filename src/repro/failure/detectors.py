"""Failure detectors.

The paper uses three distinct failure-detection schemes (Section 5):

1. Among application servers, an *eventually perfect* failure detector in the
   sense of Chandra and Toueg: completeness (a crashed server is eventually
   suspected by every server) and eventual accuracy (there is a time after
   which no correct server is suspected).  Suspicions may be wrong for a
   while without breaking safety.
2. Application servers learn about database crashes/recoveries through broken
   connections and the ``Ready`` notification the database sends when it comes
   back up -- this is part of the database protocol itself, not of this module.
3. Clients use plain time-outs to decide when to re-send a request to all
   application servers -- implemented inside the client protocol.

This module provides scheme (1) in two flavours:

* :class:`EventuallyPerfectFailureDetector` -- an *oracle* detector that reads
  the ground-truth ``up`` flag of processes.  It suspects a crashed process
  only after a configurable detection delay and can be told to emit transient
  *false suspicions*, which is how the experiments exercise the "unreliable
  failure detection" behaviour of the protocol.
* :class:`HeartbeatFailureDetector` -- a genuine message-based implementation:
  monitored processes periodically send heartbeats; an observer suspects a
  peer whose heartbeat is overdue and increases that peer's time-out whenever
  a suspicion turns out to be false (the classic adaptive ◇P construction).

:class:`PerfectFailureDetector` (immediate, never wrong) is used by the
primary-backup baseline, which -- as the paper notes -- *requires* perfect
failure detection for correctness.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.net.message import Message, is_type
from repro.net.network import Network
from repro.sim.process import Process


class FailureDetector:
    """Interface: ``suspect(observer, target)`` as in the paper's predicate."""

    def suspect(self, observer: str, target: str) -> bool:
        """Whether ``observer`` currently suspects ``target`` to have crashed."""
        raise NotImplementedError

    def suspected_by(self, observer: str, candidates: Iterable[str]) -> list[str]:
        """Subset of ``candidates`` currently suspected by ``observer``."""
        return [name for name in candidates if self.suspect(observer, name)]


class PerfectFailureDetector(FailureDetector):
    """Oracle detector: suspects exactly the processes that are down right now."""

    def __init__(self, network: Network):
        self.network = network

    def suspect(self, observer: str, target: str) -> bool:
        process = self.network.processes.get(target)
        return process is None or not process.up


class EventuallyPerfectFailureDetector(FailureDetector):
    """Oracle-based eventually-perfect (◇P) detector with injectable mistakes.

    Completeness: a crashed process is suspected ``detection_delay`` after the
    crash.  Accuracy: an up process is only suspected during explicitly
    injected false-suspicion windows, which are finite, so there is a time
    after which no correct process is suspected.
    """

    def __init__(self, network: Network, detection_delay: float = 5.0):
        if detection_delay < 0:
            raise ValueError("detection_delay must be non-negative")
        self.network = network
        self.sim = network.sim
        self.detection_delay = detection_delay
        self._crash_times: dict[str, float] = {}
        self._recover_times: dict[str, float] = {}
        # (observer, target) -> list of (start, end) false-suspicion windows
        self._false_windows: dict[tuple[str, str], list[tuple[str, float, float]]] = {}
        self._hook_processes()

    def _hook_processes(self) -> None:
        for process in self.network.processes.values():
            self._instrument(process)

    def _instrument(self, process: Process) -> None:
        detector = self
        original_crash = process.crash
        original_recover = process.recover

        def crash_hook() -> None:
            was_up = process.up
            original_crash()
            if was_up:
                detector._crash_times[process.name] = detector.sim.now

        def recover_hook() -> None:
            was_down = not process.up
            original_recover()
            if was_down:
                detector._recover_times[process.name] = detector.sim.now

        process.crash = crash_hook  # type: ignore[method-assign]
        process.recover = recover_hook  # type: ignore[method-assign]

    def register_process(self, process: Process) -> None:
        """Instrument a process registered after the detector was created."""
        self._instrument(process)

    def inject_false_suspicion(self, observer: str, target: str, start: float,
                               duration: float) -> None:
        """Make ``observer`` wrongly suspect ``target`` during ``[start, start+duration)``."""
        key = (observer, target)
        self._false_windows.setdefault(key, []).append((target, start, start + duration))

    def suspect(self, observer: str, target: str) -> bool:
        now = self.sim.now
        process = self.network.processes.get(target)
        if process is None:
            return True
        if not process.up:
            crash_time = self._crash_times.get(target, 0.0)
            return now >= crash_time + self.detection_delay
        for _, start, end in self._false_windows.get((observer, target), []):
            if start <= now < end:
                return True
        return False


class HeartbeatFailureDetector(FailureDetector):
    """Message-based adaptive ◇P detector.

    Every monitored process runs a heartbeat thread broadcasting ``Heartbeat``
    messages every ``heartbeat_interval``; every observer runs a monitor thread
    that suspects a peer whose last heartbeat is older than that peer's current
    time-out and raises the time-out by ``timeout_increment`` when a suspicion
    is contradicted by a later heartbeat (eventual accuracy under bounded but
    unknown message delay).
    """

    HEARTBEAT = "Heartbeat"

    def __init__(self, network: Network, members: Iterable[str],
                 heartbeat_interval: float = 5.0, initial_timeout: float = 15.0,
                 timeout_increment: float = 5.0, check_interval: Optional[float] = None,
                 install_on: Optional[Iterable[str]] = None):
        if heartbeat_interval <= 0 or initial_timeout <= 0:
            raise ValueError("intervals must be positive")
        self.network = network
        self.sim = network.sim
        self.members = list(members)
        # Detector threads run only on locally hosted members (all of them by
        # default); a distributed deployment passes its local subset, the
        # remote members run their own threads in their own OS process.
        self.install_on = list(install_on) if install_on is not None else self.members
        self.heartbeat_interval = heartbeat_interval
        self.initial_timeout = initial_timeout
        self.timeout_increment = timeout_increment
        self.check_interval = check_interval if check_interval is not None else heartbeat_interval
        # observer -> target -> last heartbeat time
        self._last_heard: dict[str, dict[str, float]] = {}
        # observer -> target -> current timeout
        self._timeouts: dict[str, dict[str, float]] = {}
        # observer -> set of currently suspected targets
        self._suspected: dict[str, set[str]] = {}
        for name in self.members:
            self._last_heard[name] = {peer: 0.0 for peer in self.members if peer != name}
            self._timeouts[name] = {peer: initial_timeout for peer in self.members if peer != name}
            self._suspected[name] = set()
        self._install_threads()

    # ------------------------------------------------------------------ setup

    def _install_threads(self) -> None:
        for name in self.install_on:
            process = self.network.processes[name]
            process.spawn(self._heartbeat_thread(process), name="fd-heartbeat")
            process.spawn(self._monitor_thread(process), name="fd-monitor")
            process.spawn(self._listen_thread(process), name="fd-listen")

    def reinstall(self, name: str) -> None:
        """Re-spawn detector threads after ``name`` recovers from a crash."""
        process = self.network.processes[name]
        process.spawn(self._heartbeat_thread(process), name="fd-heartbeat")
        process.spawn(self._monitor_thread(process), name="fd-monitor")
        process.spawn(self._listen_thread(process), name="fd-listen")

    # ---------------------------------------------------------------- threads

    def _heartbeat_thread(self, process: Process):
        peers = [peer for peer in self.members if peer != process.name]
        while True:
            for peer in peers:
                process.send(peer, Message(self.HEARTBEAT, payload={"origin": process.name}))
            yield process.sleep(self.heartbeat_interval)

    def _listen_thread(self, process: Process):
        while True:
            message = yield process.receive(is_type(self.HEARTBEAT))
            origin = message["origin"]
            self._last_heard[process.name][origin] = self.sim.now
            if origin in self._suspected[process.name]:
                # False suspicion detected: trust again and adapt the timeout.
                self._suspected[process.name].discard(origin)
                self._timeouts[process.name][origin] += self.timeout_increment
                self.sim.trace.record("fd_trust", process.name, target=origin,
                                      new_timeout=self._timeouts[process.name][origin])

    def _monitor_thread(self, process: Process):
        while True:
            yield process.sleep(self.check_interval)
            observer = process.name
            for peer, last in self._last_heard[observer].items():
                timeout = self._timeouts[observer][peer]
                overdue = self.sim.now - last > timeout
                if overdue and peer not in self._suspected[observer]:
                    self._suspected[observer].add(peer)
                    self.sim.trace.record("fd_suspect", observer, target=peer)

    # ------------------------------------------------------------------ query

    def suspect(self, observer: str, target: str) -> bool:
        return target in self._suspected.get(observer, set())
