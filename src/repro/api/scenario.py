"""Declarative scenario descriptions and their DSN string form.

A :class:`Scenario` captures everything needed to build and run one protocol
stack -- tier sizes, protocol, register mode, failure detector, latency
topology, loss, timings, workload and fault schedule -- as plain data.  Every
scenario has a DSN (data-source-name) form modelled on database connection
strings::

    etx://a3.d1.c1?fd=heartbeat&loss=0.01&seed=7
    etx://a3.d1.c8?rate=50&arrival=poisson&seed=7
    etx://a3.d1.c4?runtime=asyncio&pace=0.2
    etx://a3.d1.c4?runtime=asyncio&host=10.0.0.5&port=7000
    etx://a3.d8.c64?xshard=0.1&placement=hash&workload=bank
    2pc://a1.d1?workload=bank&timing=paper&log=25
    pb://a2.d1?workload=bank&clients=4&think=250
    baseline://a1.d1?fault=crash@215:a1

The scheme selects the protocol (``etx``/``ar``, ``2pc``/``twopc``,
``pb``/``primary-backup``, ``baseline``; extensible via
:func:`register_scheme`).  The host part gives the tier sizes as dot-separated
tokens ``a<N>`` (application servers), ``d<N>`` (database servers) and
``c<N>`` (clients), in any order; omitted tiers fall back to the protocol's
defaults.  Query parameters tune everything else; ``fault`` may repeat, every
other parameter may appear at most once (a duplicate is ambiguous and
rejected, as in database DSNs).

``Scenario.from_dsn`` and ``Scenario.to_dsn`` round-trip:
``Scenario.from_dsn(s.to_dsn()) == s`` for every scenario.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, fields, replace
from typing import Any, Callable, Optional, Sequence
from urllib.parse import parse_qsl

from repro.baselines.common import BaselineConfig
from repro.core.deployment import DeploymentConfig
from repro.core.sharding import KNOWN_PLACEMENTS, PLACEMENT_REPLICATE, Sharding
from repro.core.timing import ProtocolTiming
from repro.failure import injection
from repro.failure.injection import (
    FaultAction,
    FaultSchedule,
    validate_downtime,
    validate_partition_groups,
    validate_suspicion,
)
from repro.runtime.base import (
    KNOWN_RUNTIMES,
    MAX_PORT,
    RUNTIME_ASYNCIO,
    RUNTIME_SIM,
    RuntimeSpec,
)
from repro.sim.tracing import parse_retention

REGISTER_CONSENSUS = "consensus"
REGISTER_LOCAL = "local"
FD_ORACLE = "oracle"
FD_HEARTBEAT = "heartbeat"

TIMING_DEFAULT = "default"
TIMING_PAPER = "paper"

ARRIVAL_POISSON = "poisson"
ARRIVAL_UNIFORM = "uniform"


class ScenarioError(ValueError):
    """A malformed scenario DSN or an invalid scenario field."""


# ------------------------------------------------------------------ schemes

_SCHEME_ALIASES: dict[str, str] = {}
_DEFAULT_APP_SERVERS: dict[str, int] = {}


def register_scheme(name: str, *aliases: str, default_app_servers: int = 1) -> None:
    """Make ``name`` (and ``aliases``) valid DSN schemes for protocol ``name``."""
    _SCHEME_ALIASES[name] = name
    for alias in aliases:
        _SCHEME_ALIASES[alias] = name
    _DEFAULT_APP_SERVERS[name] = default_app_servers


def known_schemes() -> list[str]:
    """Every scheme (including aliases) the DSN parser accepts."""
    return sorted(_SCHEME_ALIASES)


def default_app_servers(protocol: str) -> int:
    """Middle-tier size used when a DSN omits the ``a<N>`` host token."""
    return _DEFAULT_APP_SERVERS.get(protocol, 1)


# Schemes are registered by their protocol drivers via
# :func:`repro.api.register_protocol` (see ``repro.api.drivers`` for the four
# paper protocols), keeping one source of truth for names, aliases and
# default tier sizes.  Importing any ``repro.api`` submodule runs the package
# ``__init__``, which loads the drivers first.


# ------------------------------------------------------------------- faults


def _format_number(value: float) -> str:
    """Shortest decimal text that parses back to exactly ``value``.

    The text must also survive a URL query string unescaped: ``repr`` writes
    large magnitudes as ``1e+16``, and ``parse_qsl`` decodes the ``+`` to a
    space, so a serialised scenario failed to parse back.  ``1e16`` is the
    same float, so the ``+`` is dropped.
    """
    text = repr(float(value))
    if text.endswith(".0"):
        text = text[:-2]
    return text.replace("e+", "e")


@dataclass(frozen=True)
class FaultSpec:
    """One DSN-expressible fault: ``kind@time[:target[:extra...]]``.

    Tokens::

        crash@244:a1                      crash a1 at t=244
        recover@500:a1                    recover a1 at t=500
        crash_for@600:d2:800              crash d2 at t=600 for 800 ms
        false_suspicion@15:a2:a1:200      a2 falsely suspects a1 for 200 ms
        partition@100:a1~a2|d1            split {a1,a2} from {d1} at t=100
        heal@300                          heal any partition at t=300
        reshard@5000:d4->d8               grow the data tier 4 -> 8 at t=5000

    Partition groups are ``|``-separated, members ``~``-separated (``~`` and
    ``|`` survive URL query parsing unescaped; ``+`` would decode to a
    space).  Processes named in no group form an implicit extra group.
    """

    kind: str
    time: float
    target: str = ""
    downtime: float = 0.0
    observer: str = ""
    duration: float = 0.0
    groups: tuple[tuple[str, ...], ...] = ()
    from_shards: int = 0
    to_shards: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "recover", "crash_for", "false_suspicion",
                             "partition", "heal", "reshard"):
            raise ScenarioError(f"unknown fault kind {self.kind!r}")
        if self.time < 0:
            raise ScenarioError("fault time must be non-negative")
        object.__setattr__(self, "groups",
                           tuple(tuple(group) for group in self.groups))
        if self.groups and self.kind != "partition":
            raise ScenarioError(f"fault kind {self.kind!r} takes no groups")
        if self.kind in ("partition", "heal", "reshard"):
            if self.target:
                raise ScenarioError(f"fault kind {self.kind!r} takes no target")
        elif not self.target:
            raise ScenarioError(f"fault kind {self.kind!r} needs a target")
        # Inapplicable scalars are rejected, not silently dropped: a
        # FaultSpec('crash', ..., downtime=500) almost certainly meant
        # crash_for, and to_token() would lose the field.
        inapplicable = []
        if self.downtime and self.kind != "crash_for":
            inapplicable.append("downtime")
        if self.kind != "false_suspicion":
            if self.observer:
                inapplicable.append("observer")
            if self.duration:
                inapplicable.append("duration")
        if (self.from_shards or self.to_shards) and self.kind != "reshard":
            inapplicable.append("from_shards/to_shards")
        if inapplicable:
            raise ScenarioError(f"fault kind {self.kind!r} takes no "
                                f"{', '.join(inapplicable)}")
        # Kind-specific scalar rules live in repro.failure.injection, shared
        # with FaultAction so the two validation layers cannot drift apart.
        try:
            if self.kind == "partition":
                validate_partition_groups(list(self.groups))
            elif self.kind == "crash_for":
                validate_downtime(self.downtime)
            elif self.kind == "false_suspicion":
                validate_suspicion(self.observer, self.target, self.duration)
            elif self.kind == "reshard":
                injection.validate_reshard(self.from_shards, self.to_shards)
        except ValueError as exc:
            raise ScenarioError(str(exc)) from None

    @classmethod
    def from_token(cls, token: str) -> "FaultSpec":
        """Parse one ``fault=`` query value."""
        match = re.fullmatch(r"([a-z_]+)@([^:]+)((?::[^:]+)*)", token)
        if match is None:
            raise ScenarioError(f"malformed fault token {token!r} "
                                "(expected kind@time[:target[:extra]])")
        kind, time_text, tail = match.groups()
        args = tail.lstrip(":").split(":") if tail else []
        try:
            time = float(time_text)
        except ValueError:
            raise ScenarioError(f"bad fault time in {token!r}") from None
        try:
            if kind in ("crash", "recover"):
                (target,) = args
                return cls(kind, time, target)
            if kind == "crash_for":
                target, downtime = args
                return cls(kind, time, target, downtime=float(downtime))
            if kind == "false_suspicion":
                observer, target, duration = args
                return cls(kind, time, target, observer=observer,
                           duration=float(duration))
            if kind == "partition":
                (layout,) = args
                groups = tuple(tuple(filter(None, group.split("~")))
                               for group in layout.split("|"))
                return cls(kind, time, groups=groups)
            if kind == "heal":
                if args:
                    raise ValueError("heal takes no arguments")
                return cls(kind, time)
            if kind == "reshard":
                (move,) = args
                shape = re.fullmatch(r"d(\d+)->d(\d+)", move)
                if shape is None:
                    raise ValueError("reshard takes a d<from>->d<to> argument")
                return cls(kind, time, from_shards=int(shape.group(1)),
                           to_shards=int(shape.group(2)))
        except ScenarioError:
            raise  # a specific validation message (overlap, duration, ...)
        except ValueError:
            raise ScenarioError(f"malformed fault token {token!r} for kind {kind!r}") from None
        raise ScenarioError(f"unknown fault kind {kind!r}")

    @classmethod
    def from_action(cls, action: "FaultAction") -> "FaultSpec":
        """The DSN-expressible form of one :class:`FaultAction`."""
        if action.kind in (injection.CRASH, injection.RECOVER):
            return cls(action.kind, action.time, action.target)
        if action.kind == injection.CRASH_FOR:
            return cls(action.kind, action.time, action.target,
                       downtime=action.params["downtime"])
        if action.kind == injection.FALSE_SUSPICION:
            return cls(action.kind, action.time, action.target,
                       observer=action.params["observer"],
                       duration=action.params["duration"])
        if action.kind == injection.PARTITION:
            return cls(action.kind, action.time,
                       groups=tuple(tuple(g) for g in action.params["groups"]))
        if action.kind == injection.HEAL:
            return cls(injection.HEAL, action.time)
        if action.kind == injection.RESHARD:
            return cls(injection.RESHARD, action.time,
                       from_shards=action.params["from_count"],
                       to_shards=action.params["to_count"])
        raise ValueError(f"fault kind {action.kind!r} has no DSN form")

    def to_token(self) -> str:
        """The ``fault=`` query value for this fault."""
        head = f"{self.kind}@{_format_number(self.time)}"
        if self.kind in ("crash", "recover"):
            return f"{head}:{self.target}"
        if self.kind == "crash_for":
            return f"{head}:{self.target}:{_format_number(self.downtime)}"
        if self.kind == "partition":
            layout = "|".join("~".join(group) for group in self.groups)
            return f"{head}:{layout}"
        if self.kind == "heal":
            return head
        if self.kind == "reshard":
            return f"{head}:d{self.from_shards}->d{self.to_shards}"
        return (f"{head}:{self.observer}:{self.target}:"
                f"{_format_number(self.duration)}")

    def add_to(self, schedule: FaultSchedule) -> None:
        """Append this fault to a :class:`FaultSchedule`."""
        if self.kind == "crash":
            schedule.crash(self.time, self.target)
        elif self.kind == "recover":
            schedule.recover(self.time, self.target)
        elif self.kind == "crash_for":
            schedule.crash_for(self.time, self.target, downtime=self.downtime)
        elif self.kind == "partition":
            schedule.partition(self.time, *self.groups)
        elif self.kind == "heal":
            schedule.heal(self.time)
        elif self.kind == "reshard":
            schedule.reshard(self.time, self.from_shards, self.to_shards)
        else:
            schedule.false_suspicion(self.time, self.observer, self.target,
                                     duration=self.duration)

    @property
    def named_processes(self) -> tuple[str, ...]:
        """Every process name this fault mentions (for validation)."""
        names = [name for name in (self.target, self.observer) if name]
        for group in self.groups:
            names.extend(group)
        return tuple(names)


def schedule_to_specs(schedule: FaultSchedule) -> tuple[FaultSpec, ...]:
    """A :class:`FaultSchedule`'s actions as DSN-expressible fault specs."""
    return tuple(FaultSpec.from_action(action) for action in schedule)


def faults_to_text(faults: Sequence[FaultSpec]) -> str:
    """Serialise fault specs as the comma-separated ``faults=`` value."""
    return ",".join(spec.to_token() for spec in faults)


def faults_from_text(text: str) -> tuple[FaultSpec, ...]:
    """Parse a ``faults=`` value: comma-separated tokens or an ``@file`` ref.

    ``;`` is accepted as an alternative token separator: contexts that
    already split values on commas (the CLI's ``--axis name=v1,v2`` grammar)
    can carry a whole multi-fault schedule as one value with semicolons.
    A value starting with ``@`` names a sidecar JSON file (written next to
    long counterexamples) holding either a list of fault tokens or an object
    with a ``"faults"`` key; everything else is parsed in place.
    """
    text = text.strip()
    if text.startswith("@"):
        return load_fault_sidecar(text[1:])
    return tuple(FaultSpec.from_token(token)
                 for token in filter(None, (t.strip()
                                            for t in re.split(r"[,;]", text))))


def load_fault_sidecar(path: str) -> tuple[FaultSpec, ...]:
    """Load a ``.faults.json`` sidecar written for a long fault schedule."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ScenarioError(f"cannot read fault sidecar {path!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"malformed fault sidecar {path!r}: {exc}") from None
    tokens = payload.get("faults") if isinstance(payload, dict) else payload
    if not isinstance(tokens, list) or not all(isinstance(t, str) for t in tokens):
        raise ScenarioError(f"fault sidecar {path!r} must hold a list of fault "
                            "tokens (or an object with a 'faults' list)")
    return tuple(FaultSpec.from_token(token) for token in tokens)


# ----------------------------------------------------------------- scenario

# Above this many faults, ``to_dsn`` switches from repeated ``fault=`` tokens
# to the single ``faults=`` list parameter.
_FAULT_LIST_THRESHOLD = 3

_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})


def _parse_bool(text: str) -> bool:
    lowered = text.lower()
    if lowered in _TRUE_WORDS:
        return True
    if lowered in _FALSE_WORDS:
        return False
    raise ValueError(f"not a boolean: {text!r}")


# query parameter -> (Scenario field, parser).  Order doubles as the canonical
# serialisation order of ``to_dsn``.  ``clients`` is an alternative spelling
# of the host's ``c<N>`` token (never serialised -- the host carries it).
_QUERY_PARAMS: dict[str, tuple[str, Callable[[str], Any]]] = {
    "seed": ("seed", int),
    "clients": ("num_clients", int),
    "rate": ("rate", float),
    "arrival": ("arrival", str),
    "think": ("think_time", float),
    "fd": ("failure_detector", str),
    "register": ("register_mode", str),
    "loss": ("loss_probability", float),
    "reliable": ("use_reliable_channels", _parse_bool),
    "detect": ("detection_delay", float),
    "hb_interval": ("heartbeat_interval", float),
    "hb_timeout": ("heartbeat_timeout", float),
    "lat_ca": ("client_app_latency", float),
    "lat_aa": ("app_app_latency", float),
    "lat_ad": ("app_db_latency", float),
    "log": ("coordinator_log_latency", float),
    "backoff": ("client_backoff", float),
    "workload": ("workload", str),
    "timing": ("timing", str),
    "placement": ("placement", str),
    "xshard": ("xshard", float),
    "trace": ("trace", str),
    "runtime": ("runtime", str),
    "host": ("host", str),
    "port": ("port", int),
    "pace": ("pace", float),
    "jobs": ("jobs", int),
    "workers": ("workers", int),
    "mailbox": ("mailbox", int),
}

# Endpoint parameters follow the database-DSN convention of edgedb et al.:
# ``host``/``port`` can each be given directly, via ``*_env`` (the name of an
# environment variable holding the value) or via ``*_file`` (a file whose
# contents are the value).  Giving the same endpoint parameter two ways is
# ambiguous and rejected.
_INDIRECT_SUFFIXES = ("_env", "_file")
_INDIRECT_BASES = ("host", "port")


def _known_query_params() -> str:
    names = sorted([*_QUERY_PARAMS,
                    *(f"{base}{suffix}" for base in _INDIRECT_BASES
                      for suffix in _INDIRECT_SUFFIXES)])
    return ", ".join([*names, "fault", "faults"])


def _resolve_indirect(key: str, raw: str) -> str:
    """Resolve a ``host_env``/``port_file``-style value to its direct text."""
    if key.endswith("_env"):
        value = os.environ.get(raw)
        if value is None:
            raise ScenarioError(
                f"bad value for {key!r}: environment variable {raw!r} is not set")
        return value
    try:
        with open(raw, "r", encoding="utf-8") as handle:
            return handle.read().strip()
    except OSError as exc:
        raise ScenarioError(f"bad value for {key!r}: cannot read {raw!r} ({exc})") from None

_HOST_TOKEN = re.compile(r"([adc])(\d+)")
_HOST_FIELDS = {"a": "num_app_servers", "d": "num_db_servers", "c": "num_clients"}


@dataclass(frozen=True)
class Scenario:
    """A complete, declarative description of one protocol run.

    ``num_app_servers=0`` (the default) resolves to the protocol's standard
    middle-tier size (3 for ``etx``, 2 for ``pb``, 1 otherwise).
    """

    # Numeric defaults are taken from the config dataclasses the drivers fill
    # in, so the DSN form and the direct-config form of "the same" deployment
    # cannot drift apart.
    protocol: str = "etx"
    num_app_servers: int = 0
    num_db_servers: int = 1
    num_clients: int = 1
    seed: int = 0
    failure_detector: str = FD_ORACLE
    register_mode: str = REGISTER_CONSENSUS
    loss_probability: float = 0.0
    use_reliable_channels: bool = False
    detection_delay: float = DeploymentConfig.detection_delay
    heartbeat_interval: float = DeploymentConfig.heartbeat_interval
    heartbeat_timeout: float = DeploymentConfig.heartbeat_timeout
    client_app_latency: float = DeploymentConfig.client_app_latency
    app_app_latency: float = DeploymentConfig.app_app_latency
    app_db_latency: float = DeploymentConfig.app_db_latency
    coordinator_log_latency: float = BaselineConfig.coordinator_log_latency
    client_backoff: float = ProtocolTiming.client_backoff
    workload: str = "default"
    timing: str = TIMING_DEFAULT
    # Data-tier partitioning: ``placement`` selects the key-placement policy
    # (``replicate`` keeps the historical full fan-out; ``hash``/``mod``
    # partition the key space over the ``d`` databases), ``xshard`` is the
    # fraction of generated requests that span two shards.
    placement: str = PLACEMENT_REPLICATE
    xshard: float = 0.0
    # Traffic shape: ``rate == 0`` is the paper's closed loop (every client
    # re-issues on delivery, pausing ``think_time`` in between); ``rate > 0``
    # is an open loop injecting requests at that many per second of virtual
    # time with the given arrival process.
    rate: float = 0.0
    arrival: str = ARRIVAL_POISSON
    think_time: float = 0.0
    # Trace retention: ``full`` stores every event (post-hoc queries see the
    # whole history), ``ring:N`` keeps the last N events (a flight recorder
    # with bounded memory), ``off`` stores nothing.  Spec checking and run
    # statistics stream off the event bus, so they work under all three.
    trace: str = "full"
    # Runtime backend: ``sim`` executes on the discrete-event simulator,
    # ``asyncio`` on an event loop with wall-clock timers and real TCP
    # between the processes.  ``host``/``port`` place the TCP endpoints
    # (process i listens on port+i; port 0 binds ephemeral localhost ports),
    # ``pace`` rescales wall time (0.2 = run protocol timers 5x faster).
    runtime: str = RUNTIME_SIM
    host: str = ""
    port: int = 0
    pace: float = 1.0
    # Parallel simulation: ``jobs`` splits the server tier over that many
    # shard kernels advanced in conservative lookahead rounds (0 = the plain
    # serial kernel); ``workers`` hosts the server shards in that many OS
    # processes (0 = interleave all shards in-process, the determinism
    # oracle).  Either way the merged trace is byte-identical to the serial
    # wheel kernel's.
    jobs: int = 0
    workers: int = 0
    # Admission control: ``mailbox`` bounds every application server's inbox
    # to that many buffered messages; a message arriving at a full inbox is
    # shed with a traced ``overload`` event (fair-lossy channels make a shed
    # indistinguishable from a network loss, so safety is unaffected).
    # 0 = unbounded, the historical behaviour.
    mailbox: int = 0
    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        protocol = _SCHEME_ALIASES.get(self.protocol)
        if protocol is None:
            raise ScenarioError(
                f"unknown protocol {self.protocol!r}; known schemes: "
                f"{', '.join(known_schemes())}")
        object.__setattr__(self, "protocol", protocol)
        if self.num_app_servers == 0:
            object.__setattr__(self, "num_app_servers", default_app_servers(protocol))
        if self.num_app_servers < 1 or self.num_db_servers < 1 or self.num_clients < 1:
            raise ScenarioError("every tier needs at least one process")
        if self.register_mode not in (REGISTER_CONSENSUS, REGISTER_LOCAL):
            raise ScenarioError(f"unknown register mode {self.register_mode!r}")
        if self.failure_detector not in (FD_ORACLE, FD_HEARTBEAT):
            raise ScenarioError(f"unknown failure detector {self.failure_detector!r}")
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ScenarioError("loss probability must be within [0, 1]")
        if self.client_backoff < 0:
            raise ScenarioError("client backoff must be non-negative")
        if self.timing not in (TIMING_DEFAULT, TIMING_PAPER):
            raise ScenarioError(f"unknown timing profile {self.timing!r}")
        if self.rate < 0:
            raise ScenarioError("arrival rate must be non-negative "
                                "(0 selects the closed loop)")
        if self.arrival not in (ARRIVAL_POISSON, ARRIVAL_UNIFORM):
            raise ScenarioError(f"unknown arrival process {self.arrival!r} "
                                f"(expected {ARRIVAL_POISSON!r} or {ARRIVAL_UNIFORM!r})")
        if self.think_time < 0:
            raise ScenarioError("think time must be non-negative")
        if self.rate > 0 and self.think_time > 0:
            raise ScenarioError("think time is a closed-loop knob; an open loop "
                                "(rate > 0) injects independently of completions")
        if self.placement not in KNOWN_PLACEMENTS:
            raise ScenarioError(f"unknown placement {self.placement!r}; known: "
                                f"{', '.join(KNOWN_PLACEMENTS)}")
        if not 0.0 <= self.xshard <= 1.0:
            raise ScenarioError("cross-shard fraction must be within [0, 1]")
        if self.xshard > 0 and self.placement == PLACEMENT_REPLICATE:
            raise ScenarioError("xshard > 0 needs a partitioned placement "
                                "(placement=hash or placement=mod); under "
                                "replication every request already involves "
                                "every database")
        try:
            parse_retention(self.trace)
        except ValueError as exc:
            raise ScenarioError(str(exc)) from None
        if self.runtime not in KNOWN_RUNTIMES:
            raise ScenarioError(f"unknown runtime {self.runtime!r}; known runtimes: "
                                f"{', '.join(KNOWN_RUNTIMES)}")
        if self.host and not re.fullmatch(r"[A-Za-z0-9._-]+", self.host):
            raise ScenarioError(f"malformed host {self.host!r} (expected a "
                                "hostname or IP address, no port/scheme/path)")
        if not 0 <= self.port <= MAX_PORT:
            raise ScenarioError(f"port must be in [0, {MAX_PORT}], got {self.port}")
        if self.pace <= 0:
            raise ScenarioError(f"pace must be > 0, got {_format_number(self.pace)}")
        if self.runtime == RUNTIME_SIM:
            endpointish = [name for name, default in
                           (("host", ""), ("port", 0), ("pace", 1.0))
                           if getattr(self, name) != default]
            if endpointish:
                raise ScenarioError(
                    f"parameter(s) {', '.join(endpointish)} only apply to "
                    "runtime=asyncio (the simulator has no endpoints or wall clock)")
        elif self.port:
            total = self.num_app_servers + self.num_db_servers + self.num_clients
            if self.port + total - 1 > MAX_PORT:
                raise ScenarioError(
                    f"port range {self.port}..{self.port + total - 1} for {total} "
                    f"processes exceeds {MAX_PORT}; pick a lower base port")
        if self.jobs < 0 or self.workers < 0:
            raise ScenarioError("jobs and workers must be non-negative")
        if self.jobs > 0:
            if self.runtime != RUNTIME_SIM:
                raise ScenarioError("jobs > 0 (parallel simulation) requires "
                                    "runtime=sim")
            if self.use_reliable_channels:
                raise ScenarioError(
                    "jobs > 0 does not support reliable=true: the retransmit "
                    "layer keeps cross-process timers the sharded kernel "
                    "cannot split deterministically")
            servers = self.num_app_servers + self.num_db_servers
            if self.jobs > servers:
                raise ScenarioError(
                    f"jobs={self.jobs} exceeds the {servers} server processes "
                    "available to shard; lower jobs or add servers")
        if self.workers > 0 and self.jobs < 1:
            raise ScenarioError("workers > 0 requires jobs >= 1 (workers host "
                                "the server shards that jobs creates)")
        if self.workers > self.jobs:
            raise ScenarioError(f"workers={self.workers} exceeds jobs={self.jobs}; "
                                "extra workers would sit idle")
        if self.mailbox < 0:
            raise ScenarioError("mailbox bound must be non-negative "
                                "(0 = unbounded)")
        object.__setattr__(self, "faults", tuple(self.faults))
        self._validate_reshards()
        known = set(self.app_server_names + self.db_server_names
                    + self.standby_db_server_names + self.client_names)
        for fault in self.faults:
            for name in fault.named_processes:
                if name not in known:
                    raise ScenarioError(
                        f"fault {fault.to_token()!r} names unknown process "
                        f"{name!r}; this scenario has processes "
                        f"{', '.join(sorted(known))}")

    def _validate_reshards(self) -> None:
        reshards = sorted((f for f in self.faults if f.kind == "reshard"),
                          key=lambda f: f.time)
        if not reshards:
            return
        if self.placement == PLACEMENT_REPLICATE:
            raise ScenarioError("reshard needs a partitioned placement "
                                "(placement=hash or placement=mod); under "
                                "replication there is nothing to move")
        if self.runtime != RUNTIME_SIM:
            raise ScenarioError("reshard currently requires runtime=sim")
        if self.jobs > 0:
            raise ScenarioError("reshard does not support jobs > 0: the "
                                "sharded kernel pins the server partition at "
                                "build time")
        if self.use_reliable_channels:
            raise ScenarioError("reshard does not support reliable=true: the "
                                "reconfiguration coordinator carries its own "
                                "retransmission")
        count = self.num_db_servers
        for fault in reshards:
            if fault.from_shards != count:
                raise ScenarioError(
                    f"fault {fault.to_token()!r} starts from d{fault.from_shards} "
                    f"but the data tier holds d{count} at that point; chain "
                    "reshards so each starts where the previous one ended")
            count = fault.to_shards

    # ------------------------------------------------------------------- DSN

    @classmethod
    def from_dsn(cls, dsn: str) -> "Scenario":
        """Parse a scenario DSN (see the module docstring for the grammar)."""
        if "://" not in dsn:
            raise ScenarioError(f"not a scenario DSN (missing '://'): {dsn!r}")
        scheme, _, rest = dsn.partition("://")
        scheme = scheme.strip().lower()
        if scheme not in _SCHEME_ALIASES:
            raise ScenarioError(f"unknown scenario scheme {scheme!r}; known schemes: "
                                f"{', '.join(known_schemes())}")
        host, _, query = rest.partition("?")
        values: dict[str, Any] = {"protocol": _SCHEME_ALIASES[scheme]}
        cls._parse_host(host, values)
        cls._parse_query(query, values)
        return cls(**values)

    @staticmethod
    def _parse_host(host: str, values: dict[str, Any]) -> None:
        for token in filter(None, host.split(".")):
            match = _HOST_TOKEN.fullmatch(token)
            if match is None:
                raise ScenarioError(
                    f"bad host token {token!r} (expected a<N>, d<N> or c<N>)")
            tier, count = match.groups()
            field_name = _HOST_FIELDS[tier]
            if field_name in values:
                raise ScenarioError(f"ambiguous host: tier {tier!r} given twice")
            if int(count) < 1:
                raise ScenarioError(f"bad host token {token!r}: every tier "
                                    "needs at least one process")
            values[field_name] = int(count)

    @staticmethod
    def _parse_query(query: str, values: dict[str, Any]) -> None:
        faults: list[FaultSpec] = []
        fault_list: Optional[tuple[FaultSpec, ...]] = None
        seen: dict[str, str] = {}
        for key, raw in parse_qsl(query, keep_blank_values=True):
            if key == "fault":
                faults.append(FaultSpec.from_token(raw))
                continue
            if key == "faults":
                if fault_list is not None:
                    raise ScenarioError("ambiguous DSN: parameter 'faults' "
                                        "given twice")
                fault_list = faults_from_text(raw)
                continue
            origin = key
            if (key.endswith(_INDIRECT_SUFFIXES)
                    and key.rsplit("_", 1)[0] in _INDIRECT_BASES):
                # host_env / port_file style: resolve to the direct value and
                # fold into the base parameter, so giving an endpoint two
                # ways trips the ambiguity check below.
                raw = _resolve_indirect(key, raw)
                key = key.rsplit("_", 1)[0]
            if key in seen:
                raise ScenarioError(
                    f"ambiguous DSN: {origin!r} and an earlier parameter both "
                    f"set {key!r}; give each endpoint parameter one way")
            seen[key] = raw
            if key not in _QUERY_PARAMS:
                raise ScenarioError(
                    f"unknown DSN parameter {key!r}; known parameters: "
                    f"{_known_query_params()}")
            field_name, parser = _QUERY_PARAMS[key]
            if field_name in values:
                raise ScenarioError(
                    f"ambiguous DSN: {key!r} duplicates a host token "
                    f"(both set {field_name})")
            try:
                values[field_name] = parser(raw)
            except ValueError as exc:
                raise ScenarioError(f"bad value for {key!r}: {exc}") from None
        if faults and fault_list is not None:
            raise ScenarioError("ambiguous DSN: both repeated 'fault' tokens "
                                "and a 'faults' list given; use one form")
        if faults:
            values["faults"] = tuple(faults)
        elif fault_list is not None:
            values["faults"] = fault_list

    def to_dsn(self) -> str:
        """Serialise to the canonical DSN (omitting default-valued parameters)."""
        defaults = {f.name: f.default for f in fields(self) if f.name != "faults"}
        host = (f"a{self.num_app_servers}.d{self.num_db_servers}"
                f".c{self.num_clients}")
        parts: list[str] = []
        for key, (field_name, _) in _QUERY_PARAMS.items():
            if key == "clients":  # the host's c<N> token already carries it
                continue
            value = getattr(self, field_name)
            if value == defaults[field_name]:
                continue
            if isinstance(value, bool):
                text = "1" if value else "0"
            elif isinstance(value, float):
                text = _format_number(value)
            else:
                text = str(value)
            parts.append(f"{key}={text}")
        # Short schedules read best as repeated fault= tokens; campaign-sized
        # ones collapse into one faults= list so the DSN stays a single
        # copy-pastable parameter.  Both forms parse to the same scenario.
        if len(self.faults) > _FAULT_LIST_THRESHOLD:
            parts.append(f"faults={faults_to_text(self.faults)}")
        else:
            parts.extend(f"fault={fault.to_token()}" for fault in self.faults)
        query = "&".join(parts)
        return f"{self.protocol}://{host}" + (f"?{query}" if query else "")

    # -------------------------------------------------------------- derived

    def with_(self, **changes: Any) -> "Scenario":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def fault_schedule(self) -> FaultSchedule:
        """The scenario's faults as an applicable :class:`FaultSchedule`."""
        schedule = FaultSchedule()
        for fault in self.faults:
            fault.add_to(schedule)
        return schedule

    @property
    def client_names(self) -> list[str]:
        return [f"c{i + 1}" for i in range(self.num_clients)]

    @property
    def app_server_names(self) -> list[str]:
        return [f"a{i + 1}" for i in range(self.num_app_servers)]

    @property
    def db_server_names(self) -> list[str]:
        return [f"d{i + 1}" for i in range(self.num_db_servers)]

    @property
    def max_db_servers(self) -> int:
        """The largest data tier this scenario ever grows to (via reshards)."""
        return max([self.num_db_servers,
                    *(f.to_shards for f in self.faults if f.kind == "reshard")])

    @property
    def standby_db_server_names(self) -> list[str]:
        """Databases beyond the initial tier, held in reserve for reshards."""
        return [f"d{i + 1}" for i in range(self.num_db_servers,
                                           self.max_db_servers)]

    @property
    def sharding(self) -> Sharding:
        """Key-placement map of the database tier this scenario describes."""
        return Sharding(tuple(self.db_server_names), self.placement)

    @property
    def runtime_spec(self) -> RuntimeSpec:
        """The validated runtime backend description of this scenario."""
        return RuntimeSpec(kind=self.runtime, host=self.host, port=self.port,
                           pace=self.pace)

    @property
    def process_names(self) -> list[str]:
        """All process names in deployment (and TCP port-assignment) order."""
        return self.app_server_names + self.db_server_names + self.client_names

    @property
    def load_shape(self) -> str:
        """One word for the traffic shape this scenario asks for."""
        return "open" if self.rate > 0 else "closed"

    def describe(self) -> str:
        """One human-readable line."""
        if self.rate > 0:
            load = f"open loop @ {_format_number(self.rate)}/s ({self.arrival})"
        elif self.think_time > 0:
            load = f"closed loop, think {_format_number(self.think_time)} ms"
        else:
            load = "closed loop"
        return (f"{self.protocol} scenario: {self.num_app_servers} app / "
                f"{self.num_db_servers} db / {self.num_clients} client(s), "
                f"{load}, workload={self.workload}, fd={self.failure_detector}, "
                f"seed={self.seed}, faults={len(self.faults)}")
