"""Protocol drivers: one build recipe per middle-tier protocol.

A :class:`ProtocolDriver` knows how to turn a :class:`~repro.api.scenario.Scenario`
into a fully wired deployment.  Drivers live in a registry
(:func:`register_protocol`), so the four paper protocols and any later
additions are constructed through exactly one code path -- :func:`build` --
and every consumer (experiments, examples, CLI, tests) sees the same uniform
:class:`RunningSystem` surface: ``issue`` / ``run`` / ``run_request`` /
``apply_faults`` / ``check_spec`` / ``stats``.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import Any, Callable, Iterator, Optional

from repro.api.scenario import Scenario, ScenarioError, register_scheme
from repro.api.workloads import ShardContext, WorkloadBinding, bind_workload
from repro.baselines.baseline import BaselineDeployment
from repro.baselines.common import BaselineConfig
from repro.baselines.primary_backup import PrimaryBackupDeployment
from repro.baselines.twopc import TwoPCDeployment
from repro.core.client import IssuedRequest
from repro.core.deployment import DeploymentConfig, EtxDeployment
from repro.core.spec import SpecReport
from repro.core.timing import DatabaseTiming, ProtocolTiming
from repro.core.types import Request
from repro.failure.injection import FaultSchedule
from repro.runtime.base import RuntimeSpec


class RunningSystem:
    """A built protocol stack behind one protocol-agnostic facade.

    Wraps the underlying deployment (``EtxDeployment`` or one of the baseline
    deployments) and exposes the uniform run surface; every other attribute
    (``sim``, ``trace``, ``network``, ``db_servers``, ...) is delegated to the
    wrapped deployment, so existing idioms keep working.
    """

    def __init__(self, scenario: Scenario, deployment: Any,
                 workload: WorkloadBinding, db_timing: DatabaseTiming):
        self.scenario = scenario
        self.deployment = deployment
        self.workload = workload
        self.db_timing = db_timing

    def __getattr__(self, name: str) -> Any:
        if name == "deployment":  # guard against recursion before __init__ ran
            raise AttributeError(name)
        return getattr(self.deployment, name)

    def __repr__(self) -> str:
        return f"RunningSystem({self.scenario.to_dsn()!r})"

    # ------------------------------------------------------- uniform surface

    def issue(self, request: Request, client: Optional[str] = None) -> IssuedRequest:
        """Issue a request from the named (or first) client."""
        return self.deployment.issue(request, client)

    def run(self, until: Optional[float] = None) -> float:
        """Advance the simulation (until the queue drains or ``until``)."""
        return self.deployment.run(until=until)

    def run_request(self, request: Request, client: Optional[str] = None,
                    horizon: float = 1_000_000.0) -> IssuedRequest:
        """Issue ``request`` and run until its result is delivered."""
        return self.deployment.run_request(request, client, horizon=horizon)

    def apply_faults(self, schedule: FaultSchedule) -> None:
        """Schedule a fault-injection plan against the deployment."""
        self.deployment.apply_faults(schedule)

    def check_spec(self, check_termination: bool = True) -> SpecReport:
        """Check the e-Transaction properties over the current trace."""
        return self.deployment.check_spec(check_termination=check_termination)

    @property
    def stats(self):
        """Network traffic statistics of the run."""
        return self.deployment.network.stats

    def standard_request(self) -> Request:
        """A fresh instance of the scenario workload's standard request."""
        return self.workload.make_request()

    def close(self) -> None:
        """Release the deployment's runtime resources (sockets, event loop).

        A no-op for simulator-backed systems; asyncio-backed systems close
        their TCP servers, connections and event loop.  Idempotent.
        """
        self.deployment.close()


class ProtocolDriver:
    """Build recipe for one protocol; subclass and register.

    ``ignored_fields`` names the :class:`Scenario` fields this protocol does
    not consume; a scenario that sets one of them away from its default is
    rejected rather than silently mis-describing the run.
    """

    name: str = ""
    aliases: tuple[str, ...] = ()
    default_app_servers: int = 1
    min_app_servers: int = 1
    ignored_fields: tuple[str, ...] = ()

    def build(self, scenario: Scenario, *,
              business_logic: Callable[[Request], Callable[[Any], Any]],
              initial_data: dict[str, Any],
              db_timing: DatabaseTiming,
              protocol_timing: ProtocolTiming,
              runtime: RuntimeSpec) -> Any:
        """Return a fully wired deployment for ``scenario``."""
        raise NotImplementedError

    def validate(self, scenario: Scenario) -> None:
        """Reject scenarios this protocol cannot run (or cannot honour)."""
        if scenario.num_app_servers < self.min_app_servers:
            raise ScenarioError(
                f"protocol {self.name!r} needs at least {self.min_app_servers} "
                f"application server(s), got {scenario.num_app_servers}")
        defaults = {f.name: f.default for f in dataclass_fields(scenario)}
        for field_name in self.ignored_fields:
            if getattr(scenario, field_name) != defaults[field_name]:
                raise ScenarioError(
                    f"protocol {self.name!r} does not support "
                    f"{field_name!r}; remove it from the scenario")


_REGISTRY: dict[str, ProtocolDriver] = {}


def register_protocol(name: str, driver: ProtocolDriver,
                      aliases: tuple[str, ...] = ()) -> None:
    """Register ``driver`` under ``name`` (and DSN scheme aliases)."""
    register_scheme(name, *aliases,
                    default_app_servers=driver.default_app_servers)
    _REGISTRY[name] = driver


def get_protocol(name: str) -> ProtocolDriver:
    """The registered driver for ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ScenarioError(f"no driver registered for protocol {name!r}; "
                            f"registered: {', '.join(sorted(_REGISTRY))}") from None


def registered_protocols() -> list[str]:
    """Canonical names of every registered protocol."""
    return sorted(_REGISTRY)


def iter_drivers() -> Iterator[tuple[str, ProtocolDriver]]:
    """(name, driver) pairs, sorted by name."""
    return iter(sorted(_REGISTRY.items()))


# ------------------------------------------------------- built-in drivers


class EtxDriver(ProtocolDriver):
    """The paper's asynchronous-replication (e-Transaction) protocol."""

    name = "etx"
    aliases = ("ar",)
    default_app_servers = 3
    ignored_fields = ("coordinator_log_latency",)

    def build(self, scenario, *, business_logic, initial_data, db_timing,
              protocol_timing, runtime):
        has_reshards = any(fault.kind == "reshard" for fault in scenario.faults)
        config = DeploymentConfig(
            runtime=runtime,
            num_app_servers=scenario.num_app_servers,
            num_db_servers=scenario.num_db_servers,
            num_clients=scenario.num_clients,
            register_mode=scenario.register_mode,
            seed=scenario.seed,
            loss_probability=scenario.loss_probability,
            use_reliable_channels=scenario.use_reliable_channels,
            detection_delay=scenario.detection_delay,
            failure_detector=scenario.failure_detector,
            heartbeat_interval=scenario.heartbeat_interval,
            heartbeat_timeout=scenario.heartbeat_timeout,
            client_app_latency=scenario.client_app_latency,
            app_app_latency=scenario.app_app_latency,
            app_db_latency=scenario.app_db_latency,
            db_timing=db_timing,
            protocol_timing=protocol_timing,
            initial_data=initial_data,
            business_logic=business_logic,
            placement=scenario.placement,
            trace_retention=scenario.trace,
            enable_reshard=has_reshards,
            num_standby_db_servers=len(scenario.standby_db_server_names),
            mailbox_limit=scenario.mailbox,
        )
        return EtxDeployment(config)


class _BaselineFamilyDriver(ProtocolDriver):
    """Shared config assembly for the three comparison protocols.

    The comparison stacks have no register mode, tunable failure detector or
    reliable-channel layer -- those are e-Transaction machinery -- so the
    corresponding scenario fields are rejected instead of ignored.
    """

    deployment_class: type = BaselineDeployment
    ignored_fields = ("register_mode", "failure_detector", "use_reliable_channels",
                      "detection_delay", "heartbeat_interval", "heartbeat_timeout",
                      "mailbox")

    def validate(self, scenario: Scenario) -> None:
        super().validate(scenario)
        # Online resharding is e-Transaction machinery: it rides on the epoch
        # directory the comparison stacks do not have.
        if any(fault.kind == "reshard" for fault in scenario.faults):
            raise ScenarioError(
                f"protocol {self.name!r} does not support online resharding; "
                f"remove the reshard fault from the scenario")

    def _config(self, scenario, *, business_logic, initial_data, db_timing,
                protocol_timing, runtime) -> BaselineConfig:
        return BaselineConfig(
            runtime=runtime,
            num_app_servers=scenario.num_app_servers,
            num_db_servers=scenario.num_db_servers,
            num_clients=scenario.num_clients,
            seed=scenario.seed,
            loss_probability=scenario.loss_probability,
            client_app_latency=scenario.client_app_latency,
            app_app_latency=scenario.app_app_latency,
            app_db_latency=scenario.app_db_latency,
            db_timing=db_timing,
            protocol_timing=protocol_timing,
            coordinator_log_latency=scenario.coordinator_log_latency,
            initial_data=initial_data,
            business_logic=business_logic,
            placement=scenario.placement,
            trace_retention=scenario.trace,
        )

    def build(self, scenario, *, business_logic, initial_data, db_timing,
              protocol_timing, runtime):
        config = self._config(scenario, business_logic=business_logic,
                              initial_data=initial_data, db_timing=db_timing,
                              protocol_timing=protocol_timing, runtime=runtime)
        return self.deployment_class(config)


class BaselineDriver(_BaselineFamilyDriver):
    """Unreliable baseline (Figure 7a): one-phase commit, no reliability."""

    name = "baseline"
    deployment_class = BaselineDeployment
    ignored_fields = _BaselineFamilyDriver.ignored_fields + ("coordinator_log_latency",)


class TwoPCDriver(_BaselineFamilyDriver):
    """Presumed-nothing two-phase commit (Figure 7b)."""

    name = "2pc"
    aliases = ("twopc",)
    deployment_class = TwoPCDeployment


class PrimaryBackupDriver(_BaselineFamilyDriver):
    """Primary-backup replication (Figure 7c)."""

    name = "pb"
    aliases = ("primary-backup",)
    default_app_servers = 2
    min_app_servers = 2
    deployment_class = PrimaryBackupDeployment
    ignored_fields = _BaselineFamilyDriver.ignored_fields + ("coordinator_log_latency",)


register_protocol(EtxDriver.name, EtxDriver(), aliases=EtxDriver.aliases)
register_protocol(TwoPCDriver.name, TwoPCDriver(), aliases=TwoPCDriver.aliases)
register_protocol(PrimaryBackupDriver.name, PrimaryBackupDriver(),
                  aliases=PrimaryBackupDriver.aliases)
register_protocol(BaselineDriver.name, BaselineDriver())


# ----------------------------------------------------------------- facade


def _resolve_db_timing(scenario: Scenario) -> DatabaseTiming:
    if scenario.timing == "paper":
        from repro.experiments.calibration import paper_database_timing

        return paper_database_timing()
    return DatabaseTiming()


def build(scenario: Scenario, *,
          workload: Any = None,
          business_logic: Optional[Callable[[Request], Callable[[Any], Any]]] = None,
          initial_data: Optional[dict[str, Any]] = None,
          db_timing: Optional[DatabaseTiming] = None,
          protocol_timing: Optional[ProtocolTiming] = None,
          runtime: Optional[RuntimeSpec] = None) -> RunningSystem:
    """Build (and start) the system a scenario describes.

    The keyword overrides exist for programmatic callers that need objects a
    DSN cannot carry -- a custom workload instance, timing objects, raw
    business logic, or a :class:`RuntimeSpec` naming the local subset of a
    distributed run; anything omitted comes from the scenario itself.  The
    scenario's fault schedule is applied before returning.
    """
    driver = get_protocol(scenario.protocol)
    driver.validate(scenario)
    shard_context = ShardContext(sharding=scenario.sharding,
                                 cross_shard_fraction=scenario.xshard,
                                 seed=scenario.seed)
    binding = bind_workload(workload if workload is not None else scenario.workload,
                            context=shard_context)
    resolved_db_timing = db_timing if db_timing is not None \
        else _resolve_db_timing(scenario)
    if scenario.jobs > 0 and runtime is None:
        # Parallel simulation: the sharded builder runs one sub-build per
        # shard (each passing an explicit RuntimeSpec back through here) and
        # already applies the restricted fault schedule inside each shard.
        from repro.sim.parallel import build_sharded

        deployment = build_sharded(
            scenario, workload=workload, business_logic=business_logic,
            initial_data=initial_data, db_timing=db_timing,
            protocol_timing=protocol_timing)
        return RunningSystem(scenario, deployment, binding, resolved_db_timing)
    if protocol_timing is None:
        protocol_timing = ProtocolTiming(client_backoff=scenario.client_backoff)
    deployment = driver.build(
        scenario,
        business_logic=business_logic if business_logic is not None
        else binding.business_logic,
        initial_data=dict(initial_data) if initial_data is not None
        else dict(binding.initial_data),
        db_timing=resolved_db_timing,
        protocol_timing=protocol_timing,
        runtime=runtime if runtime is not None else scenario.runtime_spec,
    )
    system = RunningSystem(scenario, deployment, binding, resolved_db_timing)
    schedule = scenario.fault_schedule()
    if len(schedule):
        system.apply_faults(schedule)
    return system
