"""Unified scenario API: one protocol-agnostic facade for every run.

This package is the single entry point for building and running any scenario
of the reproduction -- the e-Transaction protocol and the three comparison
protocols alike::

    from repro import api

    # declaratively ...
    scenario = api.Scenario(protocol="etx", num_app_servers=3, workload="bank")

    # ... or from a DSN string (round-trips via scenario.to_dsn()):
    scenario = api.Scenario.from_dsn("etx://a3.d1.c1?fd=heartbeat&seed=7")

    result = api.run_scenario(scenario)
    print(result.summary())          # throughput, percentiles, messages, spec

    # ... or from a DSN with a traffic shape (8 clients, open loop):
    result = api.run_scenario("etx://a3.d1.c8?rate=50&arrival=poisson")

    # fan a scenario grid out over worker processes (deterministic):
    sweep = api.Sweep.over("etx://d1", protocol=["etx", "2pc"], clients=[1, 8])
    print(api.run_sweep(sweep, workers=4).to_table())

    # or keep your hands on the wheel:
    system = api.build(scenario)     # a RunningSystem facade
    issued = system.run_request(system.standard_request())
    assert system.check_spec().ok

New protocols plug in with :func:`register_protocol`; their DSN scheme and
smoke coverage (tests parametrize over :func:`registered_protocols`) come for
free.  New workloads plug in with :func:`register_workload`.
"""

from repro.api.drivers import (
    ProtocolDriver,
    RunningSystem,
    build,
    get_protocol,
    iter_drivers,
    register_protocol,
    registered_protocols,
)
from repro.api.runner import ScenarioResult, load_generator_for, run_scenario
from repro.api.sweep import Sweep, SweepResult, map_jobs, run_sweep
from repro.api.scenario import (
    FaultSpec,
    Scenario,
    ScenarioError,
    default_app_servers,
    faults_from_text,
    faults_to_text,
    known_schemes,
    load_fault_sidecar,
    register_scheme,
    schedule_to_specs,
)
from repro.api.workloads import (
    ShardContext,
    WorkloadBinding,
    bind_workload,
    register_workload,
    registered_workloads,
)

__all__ = [
    "Scenario",
    "FaultSpec",
    "ScenarioError",
    "schedule_to_specs",
    "faults_to_text",
    "faults_from_text",
    "load_fault_sidecar",
    "known_schemes",
    "register_scheme",
    "default_app_servers",
    "ProtocolDriver",
    "RunningSystem",
    "register_protocol",
    "registered_protocols",
    "get_protocol",
    "iter_drivers",
    "build",
    "ScenarioResult",
    "run_scenario",
    "load_generator_for",
    "Sweep",
    "SweepResult",
    "run_sweep",
    "map_jobs",
    "ShardContext",
    "WorkloadBinding",
    "bind_workload",
    "register_workload",
    "registered_workloads",
]
