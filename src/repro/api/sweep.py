"""Declarative scenario sweeps and their parallel executor.

A :class:`Sweep` is a base :class:`~repro.api.scenario.Scenario` plus named
*axes* (protocol, tier sizes, fault schedules, seeds, load shape, any scenario
field).  :meth:`Sweep.expand` takes the cartesian product of the axes and
yields one concrete scenario per grid point; :func:`run_sweep` executes the
grid -- serially, or fanned out over a :class:`~concurrent.futures.ProcessPoolExecutor`
-- and returns the ordered :class:`ScenarioResult` rows.

Determinism is the contract: every scenario carries its own seed, each
execution resets the process-global request-id counter first
(:func:`repro.core.types.reset_request_counter`), and the per-stream simulator
RNGs are hash-randomisation-free, so a parallel sweep produces *byte-identical*
results to a serial execution of the same grid::

    from repro import api

    sweep = api.Sweep.over("etx://d1?workload=bank",
                           protocol=["etx", "2pc"], num_clients=[1, 4, 8])
    result = api.run_sweep(sweep, requests=2, workers=4)
    print(result.to_table())

Experiment harnesses reuse the executor through :func:`map_jobs` when their
per-scenario measurement is something other than :func:`run_scenario`.
"""

from __future__ import annotations

import itertools
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence, TypeVar, Union

from repro.api.runner import ScenarioResult, run_scenario
from repro.api.scenario import _QUERY_PARAMS, Scenario, ScenarioError, faults_from_text
from repro.core.types import reset_request_counter

_JobT = TypeVar("_JobT")
_RowT = TypeVar("_RowT")

# Axis names accept scenario field names and their DSN-parameter spellings.
_AXIS_ALIASES: dict[str, str] = {
    **{param: field_name for param, (field_name, _) in _QUERY_PARAMS.items()},
    "protocol": "protocol",
    "app_servers": "num_app_servers",
    "db_servers": "num_db_servers",
    "a": "num_app_servers",
    "d": "num_db_servers",
    "c": "num_clients",
}

_SCENARIO_FIELDS = frozenset(Scenario.__dataclass_fields__)


def resolve_axis_field(name: str) -> str:
    """Map an axis name (field name or DSN spelling) to a Scenario field."""
    field_name = _AXIS_ALIASES.get(name, name)
    if field_name not in _SCENARIO_FIELDS:
        raise ScenarioError(
            f"unknown sweep axis {name!r}; axes are scenario fields "
            f"({', '.join(sorted(_SCENARIO_FIELDS))}) or DSN parameters "
            f"({', '.join(sorted(_AXIS_ALIASES))})")
    return field_name


def _coerce_axis_value(field_name: str, value: Any) -> Any:
    """Parse axis shorthands: a ``faults`` axis accepts fault-list strings
    (the ``faults=`` DSN grammar), so whole fault schedules sweep as easily
    as numeric knobs."""
    if field_name == "faults" and isinstance(value, str):
        return faults_from_text(value)
    return value


@dataclass(frozen=True)
class Sweep:
    """A base scenario and the axes to expand around it.

    Each axis is ``(name, values)``; a value is either a plain field value or
    a mapping of several fields applied together (useful when one logical
    axis moves multiple knobs, e.g. a protocol together with its natural
    middle-tier size).  Axes expand in order, later axes fastest -- the same
    nesting as ``itertools.product``.
    """

    base: Scenario
    axes: tuple[tuple[str, tuple[Any, ...]], ...] = ()

    @classmethod
    def over(cls, base: Union[Scenario, str], **axes: Iterable[Any]) -> "Sweep":
        """Build a sweep from a base scenario (or DSN) and keyword axes."""
        if isinstance(base, str):
            base = Scenario.from_dsn(base)
        resolved = tuple((name, tuple(values)) for name, values in axes.items())
        for name, values in resolved:
            if not values:
                raise ScenarioError(f"sweep axis {name!r} has no values")
            # An axis whose values are all mappings is a compound axis; its
            # name is just a label and the mappings name the fields.
            if any(not isinstance(value, Mapping) for value in values):
                resolve_axis_field(name)
        return cls(base=base, axes=resolved)

    def with_axis(self, name: str, values: Iterable[Any]) -> "Sweep":
        """A copy with one more axis appended."""
        return Sweep.over(self.base, **dict(self.axes), **{name: values})

    def __len__(self) -> int:
        size = 1
        for _, values in self.axes:
            size *= len(values)
        return size

    def expand(self) -> list[Scenario]:
        """One concrete scenario per grid point, in deterministic grid order."""
        scenarios: list[Scenario] = []
        names = [name for name, _ in self.axes]
        for point in itertools.product(*(values for _, values in self.axes)):
            scenario = self.base
            for name, value in zip(names, point):
                if isinstance(value, Mapping):
                    scenario = scenario.with_(
                        **{resolve_axis_field(k): _coerce_axis_value(
                            resolve_axis_field(k), v) for k, v in value.items()})
                else:
                    field_name = resolve_axis_field(name)
                    scenario = scenario.with_(
                        **{field_name: _coerce_axis_value(field_name, value)})
            scenarios.append(scenario)
        return scenarios


# ------------------------------------------------------------------ executor


def default_workers(jobs: int) -> int:
    """Worker processes used when the caller does not say: one per grid
    point, capped by the machine's cores."""
    return max(1, min(jobs, os.cpu_count() or 1))


def map_jobs(worker: Callable[[_JobT], _RowT], jobs: Sequence[_JobT],
             workers: Optional[int] = None) -> list[_RowT]:
    """Run ``worker`` over ``jobs``, preserving order.

    ``workers > 1`` fans out over a process pool; ``worker`` (and the jobs and
    rows) must then be picklable, i.e. a module-level function.  ``workers``
    of ``None`` picks :func:`default_workers`; ``0``/``1`` runs serially in
    this process.  Either path calls the *same* worker, so a serial run and a
    parallel run of the same jobs produce identical rows.
    """
    jobs = list(jobs)
    if workers is None:
        workers = default_workers(len(jobs))
    if workers <= 1 or len(jobs) <= 1:
        return [worker(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
        return list(pool.map(worker, jobs, chunksize=1))


@dataclass(frozen=True)
class _ScenarioJob:
    """Picklable unit of sweep work."""

    scenario: Scenario
    requests: int
    horizon_per_request: float
    settle: float


def _execute_scenario(job: _ScenarioJob) -> ScenarioResult:
    """Run one grid point (in whatever process the pool put it)."""
    # Per-worker deterministic seeding: the run must not see how many
    # requests earlier grid points in the same process created.
    reset_request_counter()
    return run_scenario(job.scenario, requests=job.requests,
                        horizon_per_request=job.horizon_per_request,
                        settle=job.settle)


@dataclass
class SweepResult:
    """The ordered outcome of one sweep execution."""

    rows: list[ScenarioResult]

    @property
    def ok(self) -> bool:
        """Every grid point delivered everything and kept the spec clean."""
        return all(row.ok for row in self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_table(self) -> str:
        """Fixed-width text table: one row per grid point.

        The rendering is deliberately deterministic (no timestamps, no worker
        identities) so two executions of the same grid -- serial or parallel
        -- can be compared byte for byte.
        """
        header = (f"{'scenario':<52} {'delivered':>9} {'tput/s':>8} "
                  f"{'p50':>8} {'p95':>8} {'p99':>8} {'mean':>8} "
                  f"{'msgs':>7} {'spec':>5}")
        lines = [header]
        for row in self.rows:
            stats = row.statistics
            delivered = f"{row.delivered}/{row.requested}"
            lines.append(
                f"{row.dsn:<52} {delivered:>9} {stats.throughput:>8.1f} "
                f"{stats.p50:>8.1f} {stats.p95:>8.1f} {stats.p99:>8.1f} "
                f"{stats.mean_latency:>8.1f} {row.total_messages:>7} "
                f"{'ok' if row.spec.ok else 'FAIL':>5}")
        return "\n".join(lines)


def run_sweep(sweep: Union[Sweep, Sequence[Scenario]], requests: int = 1,
              workers: Optional[int] = None,
              horizon_per_request: float = 1_000_000.0,
              settle: float = 5_000.0) -> SweepResult:
    """Execute a sweep (or an explicit scenario list) and collect the rows.

    ``requests`` is per client, as in :func:`repro.api.run_scenario`.
    ``workers`` of ``None`` uses one process per grid point up to the core
    count; ``0``/``1`` runs serially.  Rows come back in grid order
    regardless of which worker finished first.
    """
    scenarios = sweep.expand() if isinstance(sweep, Sweep) else list(sweep)
    jobs = [_ScenarioJob(scenario, requests, horizon_per_request, settle)
            for scenario in scenarios]
    return SweepResult(rows=map_jobs(_execute_scenario, jobs, workers=workers))
