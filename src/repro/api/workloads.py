"""Named workloads for scenarios.

A scenario names its workload (``workload=bank`` in the DSN); this module
resolves the name to a :class:`WorkloadBinding` -- the business logic, the
initial database contents and a factory for the workload's standard request.
Programmatic callers can instead pass a workload *object* (anything with
``business_logic`` and ``initial_data()``) straight to :func:`repro.api.build`;
:func:`bind_workload` wraps it the same way.

On a **partitioned** deployment (``placement=hash``/``mod`` in the DSN) the
binding happens against a :class:`ShardContext`: the named workloads then emit
shard-tagged key spaces sized to the database tier, generate requests carrying
their participant sets, and honour the scenario's cross-shard fraction
(``xshard``).  A workload that does not know how to shard itself is rejected
for partitioned placements -- running it would fan every request out to shards
that do not own its keys and abort everything.

New workloads register with :func:`register_workload`; the factory receives
the ``Optional[ShardContext]`` (``None`` for unpartitioned runs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Union

from repro.api.scenario import ScenarioError
from repro.core.deployment import default_business_logic
from repro.core.sharding import Sharding
from repro.core.types import Request
from repro.workload.bank import BankWorkload
from repro.workload.travel import TravelWorkload


@dataclass(frozen=True)
class ShardContext:
    """Everything a workload needs to bind against a partitioned data tier."""

    sharding: Sharding
    cross_shard_fraction: float = 0.0
    seed: int = 0

    @property
    def partitioned(self) -> bool:
        """Whether the deployment actually partitions its key space."""
        return self.sharding.partitioned


@dataclass
class WorkloadBinding:
    """A workload resolved for one run."""

    name: str
    instance: Any  # the underlying workload object (None for ``default``)
    business_logic: Callable[[Request], Callable[[Any], Any]]
    initial_data: dict[str, Any]
    make_request: Callable[[], Request]
    shard_aware: bool = False


_REGISTRY: Dict[str, Callable[[Optional[ShardContext]], WorkloadBinding]] = {}


def register_workload(name: str,
                      factory: Callable[[Optional[ShardContext]], WorkloadBinding]) -> None:
    """Register a named workload usable as ``workload=<name>`` in DSNs."""
    _REGISTRY[name] = factory


def registered_workloads() -> list[str]:
    """Names accepted for the ``workload`` scenario field."""
    return sorted(_REGISTRY)


def bind_workload(spec: Union[str, Any, None],
                  context: Optional[ShardContext] = None) -> WorkloadBinding:
    """Resolve a workload name or object to a :class:`WorkloadBinding`."""
    if spec is None:
        spec = "default"
    if isinstance(spec, str):
        try:
            binding = _REGISTRY[spec](context)
        except KeyError:
            raise ScenarioError(f"unknown workload {spec!r}; registered workloads: "
                                f"{', '.join(registered_workloads())}") from None
    elif isinstance(spec, WorkloadBinding):
        binding = spec
    else:
        binding = _bind_object(spec, context=context)
    if context is not None and context.partitioned and not binding.shard_aware:
        raise ScenarioError(
            f"workload {binding.name!r} is not shard-aware; a partitioned "
            f"placement would fan its requests out to shards that do not own "
            f"their keys.  Use a shard-aware workload (bank, travel) or "
            f"placement=replicate")
    return binding


def _bind_object(workload: Any, name: str = "",
                 context: Optional[ShardContext] = None) -> WorkloadBinding:
    shard_aware = False
    if context is not None and context.partitioned \
            and hasattr(workload, "sharded_requests"):
        make_request = workload.sharded_requests(
            context.sharding, context.cross_shard_fraction, context.seed)
        shard_aware = True
    elif hasattr(workload, "debit"):
        make_request = lambda: workload.debit(0, 10)  # noqa: E731
    elif hasattr(workload, "book"):
        make_request = lambda: workload.book(workload.destinations[0])  # noqa: E731
    elif hasattr(workload, "random_request"):
        rng = random.Random(0)
        make_request = lambda: workload.random_request(rng)  # noqa: E731
    else:
        make_request = _ping
    return WorkloadBinding(
        name=name or type(workload).__name__,
        instance=workload,
        business_logic=workload.business_logic,
        initial_data=dict(workload.initial_data()),
        make_request=make_request,
        shard_aware=shard_aware,
    )


def _ping() -> Request:
    return Request("ping", {"n": 1})


def _default_binding(context: Optional[ShardContext] = None) -> WorkloadBinding:
    return WorkloadBinding(name="default", instance=None,
                           business_logic=default_business_logic,
                           initial_data={}, make_request=_ping)


def _bank_binding(context: Optional[ShardContext] = None) -> WorkloadBinding:
    if context is not None and context.partitioned:
        # Partitioned tier: one tagged account range sized to the shard count
        # (enough keys per shard that single-shard traffic rarely conflicts),
        # overdraft allowed because the funds check cannot span shards.
        shards = len(context.sharding.shards)
        workload = BankWorkload(num_accounts=max(16, 16 * shards),
                                initial_balance=100_000,
                                allow_overdraft=True, shard_tags=True)
        return _bind_object(workload, name="bank", context=context)
    # The paper's measured workload: small debits against a bank account
    # (the configuration behind Figures 1, 7 and 8).
    return _bind_object(BankWorkload(num_accounts=4, initial_balance=100_000),
                        name="bank")


def _travel_binding(context: Optional[ShardContext] = None) -> WorkloadBinding:
    if context is not None and context.partitioned:
        shards = len(context.sharding.shards)
        destinations = tuple(f"CITY{i:02d}" for i in range(max(4, 2 * shards)))
        workload = TravelWorkload(destinations=destinations,
                                  seats_per_flight=10_000, rooms_per_hotel=10_000,
                                  cars_per_city=10_000, shard_tags=True)
        return _bind_object(workload, name="travel", context=context)
    return _bind_object(TravelWorkload(), name="travel")


register_workload("default", _default_binding)
register_workload("bank", _bank_binding)
register_workload("travel", _travel_binding)
