"""Named workloads for scenarios.

A scenario names its workload (``workload=bank`` in the DSN); this module
resolves the name to a :class:`WorkloadBinding` -- the business logic, the
initial database contents and a factory for the workload's standard request.
Programmatic callers can instead pass a workload *object* (anything with
``business_logic`` and ``initial_data()``) straight to :func:`repro.api.build`;
:func:`bind_workload` wraps it the same way.

New workloads register with :func:`register_workload`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Union

from repro.api.scenario import ScenarioError
from repro.core.deployment import default_business_logic
from repro.core.types import Request
from repro.workload.bank import BankWorkload
from repro.workload.travel import TravelWorkload


@dataclass
class WorkloadBinding:
    """A workload resolved for one run."""

    name: str
    instance: Any  # the underlying workload object (None for ``default``)
    business_logic: Callable[[Request], Callable[[Any], Any]]
    initial_data: dict[str, Any]
    make_request: Callable[[], Request]


_REGISTRY: Dict[str, Callable[[], WorkloadBinding]] = {}


def register_workload(name: str, factory: Callable[[], WorkloadBinding]) -> None:
    """Register a named workload usable as ``workload=<name>`` in DSNs."""
    _REGISTRY[name] = factory


def registered_workloads() -> list[str]:
    """Names accepted for the ``workload`` scenario field."""
    return sorted(_REGISTRY)


def bind_workload(spec: Union[str, Any, None]) -> WorkloadBinding:
    """Resolve a workload name or object to a :class:`WorkloadBinding`."""
    if spec is None:
        spec = "default"
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec]()
        except KeyError:
            raise ScenarioError(f"unknown workload {spec!r}; registered workloads: "
                                f"{', '.join(registered_workloads())}") from None
    if isinstance(spec, WorkloadBinding):
        return spec
    return _bind_object(spec)


def _bind_object(workload: Any, name: str = "") -> WorkloadBinding:
    if hasattr(workload, "debit"):
        make_request = lambda: workload.debit(0, 10)  # noqa: E731
    elif hasattr(workload, "book"):
        make_request = lambda: workload.book(workload.destinations[0])  # noqa: E731
    elif hasattr(workload, "random_request"):
        rng = random.Random(0)
        make_request = lambda: workload.random_request(rng)  # noqa: E731
    else:
        make_request = _ping
    return WorkloadBinding(
        name=name or type(workload).__name__,
        instance=workload,
        business_logic=workload.business_logic,
        initial_data=dict(workload.initial_data()),
        make_request=make_request,
    )


def _ping() -> Request:
    return Request("ping", {"n": 1})


def _default_binding() -> WorkloadBinding:
    return WorkloadBinding(name="default", instance=None,
                           business_logic=default_business_logic,
                           initial_data={}, make_request=_ping)


def _bank_binding() -> WorkloadBinding:
    # The paper's measured workload: small debits against a bank account
    # (the configuration behind Figures 1, 7 and 8).
    return _bind_object(BankWorkload(num_accounts=4, initial_balance=100_000),
                        name="bank")


def _travel_binding() -> WorkloadBinding:
    return _bind_object(TravelWorkload(), name="travel")


register_workload("default", _default_binding)
register_workload("bank", _bank_binding)
register_workload("travel", _travel_binding)
