"""Run a scenario end-to-end and bundle the result.

:func:`run_scenario` is the one-call entry point behind ``python -m repro run
<dsn>``: build the scenario's stack, drive its standard workload in a closed
loop, then package latency breakdown, message counts, attempts and the
specification report into a :class:`ScenarioResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union

from repro.api.drivers import RunningSystem, build
from repro.api.scenario import Scenario
from repro.core.spec import SpecReport
from repro.metrics.latency import LatencyBreakdown, breakdown_from_run
from repro.workload.generator import ClosedLoopDriver, RunStatistics


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    scenario: Scenario
    dsn: str
    requested: int
    statistics: RunStatistics
    breakdown: LatencyBreakdown
    message_counts: dict[str, int]
    total_messages: int
    spec: SpecReport

    @property
    def delivered(self) -> int:
        """Number of requests whose committed result reached the client."""
        return self.statistics.count

    @property
    def ok(self) -> bool:
        """Every request delivered and every checked property holds."""
        return self.delivered == self.requested and self.spec.ok

    def summary(self) -> str:
        """A compact multi-line report (what the CLI prints)."""
        stats = self.statistics
        lines = [
            f"scenario   {self.dsn}",
            f"protocol   {self.scenario.protocol}   workload {self.scenario.workload}"
            f"   seed {self.scenario.seed}",
            f"requests   {self.delivered}/{self.requested} delivered"
            f"   attempts mean {stats.mean_attempts:.1f}",
            f"latency    mean {stats.mean_latency:.1f} ms"
            f"   max {stats.max_latency:.1f} ms",
            f"messages   {self.total_messages} sent"
            f" ({self._top_message_types()})",
            f"spec       {self.spec.summary()}",
        ]
        return "\n".join(lines)

    def _top_message_types(self, limit: int = 4) -> str:
        ranked = sorted(self.message_counts.items(),
                        key=lambda item: (-item[1], item[0]))
        head = ", ".join(f"{name}={count}" for name, count in ranked[:limit])
        return head + (", ..." if len(ranked) > limit else "")


def run_scenario(scenario: Union[Scenario, str], requests: int = 1,
                 horizon_per_request: float = 1_000_000.0,
                 settle: float = 5_000.0,
                 check_termination: Optional[bool] = None,
                 **build_overrides: Any) -> ScenarioResult:
    """Build ``scenario`` (a :class:`Scenario` or DSN string), run it, report.

    ``requests`` standard workload requests are issued in a closed loop.  After
    the last delivery the simulation runs ``settle`` further milliseconds so
    cleanup traffic (fail-over, decides, acknowledgements) lands in the trace
    before the specification is checked.  ``check_termination`` defaults to
    *auto*: termination properties are only enforced when every request was
    delivered and no client was deliberately crashed.  Extra keyword arguments
    are forwarded to :func:`repro.api.build` (workload / timing overrides).
    """
    if isinstance(scenario, str):
        scenario = Scenario.from_dsn(scenario)
    system = build(scenario, **build_overrides)
    driver = ClosedLoopDriver(system, horizon_per_request=horizon_per_request)
    statistics = driver.run([system.standard_request() for _ in range(requests)])
    if settle > 0:
        system.run(until=system.sim.now + settle)
    if check_termination is None:
        client_faulted = any(fault.target in scenario.client_names
                             for fault in scenario.faults)
        check_termination = statistics.undelivered == 0 and not client_faulted
    spec = system.check_spec(check_termination=check_termination)
    breakdown = breakdown_from_run(
        protocol=scenario.protocol,
        trace=system.trace,
        timing=system.db_timing,
        mean_latency=statistics.mean_latency,
        samples=statistics.count,
    )
    return ScenarioResult(
        scenario=scenario,
        dsn=scenario.to_dsn(),
        requested=requests,
        statistics=statistics,
        breakdown=breakdown,
        message_counts=dict(system.stats.by_type_sent),
        total_messages=system.stats.sent,
        spec=spec,
    )
