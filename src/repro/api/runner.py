"""Run a scenario end-to-end and bundle the result.

:func:`run_scenario` is the one-call entry point behind ``python -m repro run
<dsn>``: build the scenario's stack, drive its workload with the traffic shape
the scenario asks for (closed loop by default, open loop when ``rate`` is
set), then package throughput, latency percentiles, per-client statistics,
latency breakdown, message counts and the specification report into a
:class:`ScenarioResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union

from repro.api.drivers import build
from repro.api.scenario import Scenario
from repro.core.spec import SpecReport
from repro.core.types import reset_request_counter
from repro.metrics.latency import LatencyBreakdown, breakdown_from_run
from repro.workload.generator import ClosedLoop, LoadGenerator, OpenLoop, RunStatistics


def load_generator_for(scenario: Scenario,
                       horizon_per_request: float = 1_000_000.0,
                       max_events: int = 5_000_000) -> LoadGenerator:
    """The load generator a scenario's ``rate``/``arrival``/``think`` ask for."""
    if scenario.rate > 0:
        return OpenLoop(rate=scenario.rate, arrival=scenario.arrival,
                        horizon_per_request=horizon_per_request,
                        max_events=max_events)
    return ClosedLoop(think_time=scenario.think_time,
                      horizon_per_request=horizon_per_request,
                      max_events=max_events)


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    scenario: Scenario
    dsn: str
    requested: int
    statistics: RunStatistics
    breakdown: LatencyBreakdown
    message_counts: dict[str, int]
    total_messages: int
    spec: SpecReport

    @property
    def delivered(self) -> int:
        """Number of requests whose committed result reached the client."""
        return self.statistics.count

    @property
    def throughput(self) -> float:
        """Delivered requests per second of virtual time."""
        return self.statistics.throughput

    @property
    def ok(self) -> bool:
        """Every request delivered and every checked property holds."""
        return self.delivered == self.requested and self.spec.ok

    def summary(self) -> str:
        """A compact multi-line report (what the CLI prints)."""
        stats = self.statistics
        scenario = self.scenario
        if scenario.rate > 0:
            load = (f"open loop @ {scenario.rate:g}/s {scenario.arrival}"
                    f" over {scenario.num_clients} client(s)")
        else:
            load = f"closed loop over {scenario.num_clients} client(s)"
            if scenario.think_time > 0:
                load += f", think {scenario.think_time:g} ms"
        lines = [
            f"scenario   {self.dsn}",
            f"protocol   {scenario.protocol}   workload {scenario.workload}"
            f"   seed {scenario.seed}",
            f"load       {load}",
            f"requests   {self.delivered}/{self.requested} delivered"
            f"   attempts mean {stats.mean_attempts:.1f}"
            f"   throughput {stats.throughput:.1f} req/s",
            f"latency    mean {stats.mean_latency:.1f} ms"
            f"   p50 {stats.p50:.1f}   p95 {stats.p95:.1f}"
            f"   p99 {stats.p99:.1f}   max {stats.max_latency:.1f}",
            f"messages   {self.total_messages} sent"
            f" ({self._top_message_types()})",
            f"spec       {self.spec.summary()}",
        ]
        if len(stats.by_client) > 1:
            per_client = "   ".join(
                f"{name} {leaf.count} req p50 {leaf.p50:.1f}"
                for name, leaf in stats.by_client.items())
            lines.insert(5, f"clients    {per_client}")
        if len(stats.by_database) > 1 or any(
                db.in_doubt for db in stats.by_database.values()):
            per_db = "   ".join(
                f"{name} {db.commits}c/{db.aborts}a"
                + (f"/{db.in_doubt}?" if db.in_doubt else "")
                for name, db in stats.by_database.items())
            lines.insert(5, f"databases  {per_db}")
        if stats.saturation.get("shed_messages"):
            sat = stats.saturation
            lines.append(f"saturation {sat['shed_messages']} message(s) shed"
                         f"   peak backlog {sat['mailbox_peak']}")
        if stats.parallel and stats.parallel.get("jobs"):
            par = stats.parallel
            events = "   ".join(f"{shard} {count}"
                                for shard, count in par["events"].items())
            lines.append(
                f"parallel   {par['jobs']} job(s), {par['workers']} worker(s)"
                f"   {par['rounds']} rounds"
                f" ({par['stalled_windows']} stalled)"
                f"   balance {par['balance']:.2f}   events: {events}")
        return "\n".join(lines)

    def _top_message_types(self, limit: int = 4) -> str:
        ranked = sorted(self.message_counts.items(),
                        key=lambda item: (-item[1], item[0]))
        head = ", ".join(f"{name}={count}" for name, count in ranked[:limit])
        return head + (", ..." if len(ranked) > limit else "")


def run_scenario(scenario: Union[Scenario, str], requests: int = 1,
                 horizon_per_request: float = 1_000_000.0,
                 settle: float = 5_000.0,
                 check_termination: Optional[bool] = None,
                 max_events: int = 5_000_000,
                 **build_overrides: Any) -> ScenarioResult:
    """Build ``scenario`` (a :class:`Scenario` or DSN string), run it, report.

    ``requests`` workload requests are issued *per client*: a closed loop
    drives every client concurrently with that many back-to-back requests,
    an open loop (``scenario.rate > 0``) injects
    ``requests * num_clients`` arrivals at the configured rate, round-robined
    over the clients.  After the last delivery the simulation runs ``settle``
    further milliseconds so cleanup traffic (fail-over, decides,
    acknowledgements) lands in the trace before the specification is checked.
    ``check_termination`` defaults to *auto*: termination properties are only
    enforced when every request was delivered and no client was deliberately
    crashed.  Extra keyword arguments are forwarded to
    :func:`repro.api.build` (workload / timing overrides).
    """
    if isinstance(scenario, str):
        scenario = Scenario.from_dsn(scenario)
    # Request identifiers only need to be unique within one run's trace;
    # restarting the sequence makes back-to-back runs of the same scenario
    # byte-identical (the sweep executor relies on the same reset).
    reset_request_counter()
    system = build(scenario, **build_overrides)
    try:
        generator = load_generator_for(scenario, horizon_per_request=horizon_per_request,
                                       max_events=max_events)
        statistics = generator.run(system, requests)
        requested = requests * scenario.num_clients
        if settle > 0:
            system.run(until=system.sim.now + settle)
        if check_termination is None:
            client_faulted = any(fault.target in scenario.client_names
                                 for fault in scenario.faults)
            check_termination = statistics.undelivered == 0 and not client_faulted
        spec = system.check_spec(check_termination=check_termination)
        # The component breakdown explains *protocol* latency, so it gets the
        # service latency -- for open loops the client-observed mean also
        # contains queueing at the client, which is load, not protocol cost.
        # The trace-derived components come from the streaming accumulator the
        # deployment subscribed at build time, so no post-hoc trace scan happens
        # here (and ``trace=ring:N``/``off`` scenarios still get a breakdown).
        breakdown = breakdown_from_run(
            protocol=scenario.protocol,
            trace=system.trace,
            timing=system.db_timing,
            mean_latency=statistics.mean_service_latency,
            samples=statistics.count,
            components=getattr(system, "latency_components", None),
        )
        return ScenarioResult(
            scenario=scenario,
            dsn=scenario.to_dsn(),
            requested=requested,
            statistics=statistics,
            breakdown=breakdown,
            message_counts=dict(system.stats.by_type_sent),
            total_messages=system.stats.sent,
            spec=spec,
        )
    finally:
        # Real-runtime backends hold OS resources (sockets, an event loop);
        # the sim backend's close() is a no-op, so this is safe everywhere.
        system.close()
