"""The message-passing fabric connecting all processes.

The :class:`Network` registers processes, samples per-message latency from a
:class:`~repro.net.latency.LatencyModel`, optionally drops messages (loss
probability and partitions), and delivers messages by calling
``Process.deliver``.  Every send, drop and delivery is recorded in the trace,
which is what the communication-step metrics (Figures 1 and 7) consume.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.net.latency import FixedLatency, LatencyModel, Sampler
from repro.net.message import Message
from repro.runtime.base import Kernel
from repro.sim.process import Process
from repro.sim.scheduler import MSG_ID_STRIDE


class NetworkStats:
    """Aggregate traffic counters maintained by the network."""

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.dropped_loss = 0
        self.dropped_partition = 0
        self.dropped_dest_down = 0
        self.by_type_sent: dict[str, int] = {}
        self.by_type_delivered: dict[str, int] = {}

    def snapshot(self) -> dict[str, int]:
        """Plain-dict view of the counters (for reports and tests)."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped_loss": self.dropped_loss,
            "dropped_partition": self.dropped_partition,
            "dropped_dest_down": self.dropped_dest_down,
        }


class Network:
    """Point-to-point message network with latency, loss and partitions.

    Parameters
    ----------
    sim:
        The kernel providing time, timers and the trace recorder (the
        simulator, or an :class:`~repro.runtime.loop.AsyncioKernel`).
    latency:
        One-way latency model (defaults to a fixed 1.75 ms hop, half of the
        paper's observed 3.5 ms RPC round trip).
    loss_probability:
        Independent probability of silently dropping each message.
    """

    def __init__(self, sim: Kernel, latency: Optional[LatencyModel] = None,
                 loss_probability: float = 0.0):
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError("loss_probability must be in [0, 1]")
        self.sim = sim
        self.latency = latency if latency is not None else FixedLatency(1.75)
        self.loss_probability = loss_probability
        self.stats = NetworkStats()
        self.processes: dict[str, Process] = {}
        self._partition_groups: list[set[str]] = []
        # Loss and latency draws come from a per-source RNG stream and message
        # ids from a per-source counter: a source's draws then depend only on
        # its *own* send history, never on how sends from different processes
        # interleave globally.  That is what lets a sharded run (one kernel
        # per shard, sources split across them) reproduce a serial run's
        # draws and ids exactly.
        self._source_rngs: dict[str, Any] = {}
        self._source_index: dict[str, int] = {}
        self._source_msg_counts: dict[str, int] = {}
        self.trace_messages = True
        # Bound once and reused: scheduling a delivery per message must not
        # re-create the bound method (and, when message tracing is off, not
        # render a per-message f-string event name either).
        self._deliver_bound = self._deliver
        # Per-link latency samplers and per-source loss draws, bound on first
        # use: resolving the latency model (a PerLinkLatency dict probe plus
        # a method dispatch) and re-binding the RNG primitive per *message*
        # was measurable.  The latency topology is fixed before traffic
        # starts (set_link after a link's first send is not supported), so a
        # bound sampler never goes stale; RNG draw order is unchanged because
        # each sampler consumes the same per-source stream the unbound
        # sample() call did.
        self._samplers: dict[tuple[str, str], Sampler] = {}
        self._loss_draws: dict[str, Callable[[], float]] = {}

    # ----------------------------------------------------------- registration

    def register(self, process: Process) -> Process:
        """Register ``process`` and attach this network as its transport."""
        if process.name in self.processes:
            raise ValueError(f"duplicate process name {process.name!r}")
        self.processes[process.name] = process
        # Registration order fixes the per-source id namespace; deployments
        # register the full process set in one deterministic order, so the
        # index is stable across runs (and across shards of one run).
        self._source_index[process.name] = len(self._source_index)
        process.attach_transport(self)
        return process

    def process(self, name: str) -> Process:
        """Look up a registered process by name."""
        return self.processes[name]

    def names(self) -> list[str]:
        """Names of all registered processes."""
        return list(self.processes)

    def hosts(self, name: str) -> bool:
        """Whether ``name`` executes in this OS process (always, in-memory)."""
        return True

    # -------------------------------------------------- per-source id/rng

    #: Per-source message-id stride: ``msg_id = index * STRIDE + n`` keeps ids
    #: globally unique while making each one a pure function of (source,
    #: per-source send count).  The canonical constant lives in the scheduler
    #: (the shard-mode context ordering decodes sender bands from it).
    MSG_ID_STRIDE = MSG_ID_STRIDE

    def _next_msg_id(self, source: str) -> int:
        count = self._source_msg_counts.get(source, 0) + 1
        self._source_msg_counts[source] = count
        index = self._source_index.get(source)
        if index is None:  # unregistered sender (tests): first-send order
            index = self._source_index[source] = len(self._source_index)
        return index * self.MSG_ID_STRIDE + count

    def _rng_for(self, source: str):
        rng = self._source_rngs.get(source)
        if rng is None:
            rng = self._source_rngs[source] = self.sim.rng(f"network.{source}")
        return rng

    # ------------------------------------------------------------ crash hooks

    def on_process_crash(self, name: str) -> None:
        """Transport hook fired when a process crashes (no-op in memory).

        The TCP transport maps this to dropping the crashed process's live
        connections, the real-network analogue of losing its volatile state.
        """

    def on_process_recover(self, name: str) -> None:
        """Transport hook fired when a crashed process recovers (no-op here)."""

    def close(self) -> None:
        """Release transport resources (sockets); no-op for the in-memory fabric."""

    # -------------------------------------------------------------- partitions

    def partition(self, *groups: Iterable[str]) -> None:
        """Split the network into the given groups; cross-group messages drop.

        Processes not named in any group form an implicit extra group.
        Overlapping groups and unknown process names are rejected up front:
        routing picks the first group containing the sender, so an overlap
        would silently give asymmetric connectivity.
        """
        from repro.failure.injection import validate_partition_groups

        named = [set(g) for g in validate_partition_groups(list(groups))]
        for name in set().union(*named):
            if name not in self.processes:
                raise ValueError(f"partition names unknown process {name!r}")
        rest = set(self.processes) - set().union(*named) if named else set()
        if rest:
            named.append(rest)
        self._partition_groups = named
        self.sim.trace.record("partition", "", groups=[sorted(g) for g in named])

    def heal_partition(self, *names: str) -> None:
        """Remove a partition; links to the healed processes work again.

        Called with no arguments (the historical form) every group is
        dropped and all links work.  Called with process names, only those
        processes are healed: they leave their groups and regain symmetric
        connectivity with everyone, while the remaining groups stay split.
        The surviving layout is re-validated through
        :func:`~repro.failure.injection.validate_partition_groups`, so a
        partial heal can never leave behind an overlapping or empty group
        that a later ``partition()`` call composed badly with.
        """
        if not names:
            self._partition_groups = []
            self.sim.trace.record("partition_heal", "")
            return
        from repro.failure.injection import validate_partition_groups

        for name in names:
            if name not in self.processes:
                raise ValueError(f"heal names unknown process {name!r}")
        healed = set(names)
        remaining = [group - healed for group in self._partition_groups]
        remaining = [group for group in remaining if group]
        if len(remaining) < 2:
            # One group cannot split anything: fully healed.
            self._partition_groups = []
        else:
            self._partition_groups = [
                set(g) for g in validate_partition_groups(
                    [sorted(group) for group in remaining])]
        self.sim.trace.record("partition_heal", "", names=sorted(healed))

    def _partitioned(self, source: str, destination: str) -> bool:
        if not self._partition_groups:
            return False
        # Blocked only when both endpoints sit in *different* groups: a
        # process in no group (e.g. after a partial heal) talks to everyone,
        # symmetrically.  ``partition()`` always files every process into a
        # group (the implicit rest group), so full partitions behave as
        # before.
        source_group = None
        for group in self._partition_groups:
            if source in group:
                source_group = group
                break
        if source_group is None:
            return False
        if destination in source_group:
            return False
        return any(destination in group for group in self._partition_groups)

    # ---------------------------------------------------------------- sending

    def send(self, source: str, destination: str, message: Message) -> None:
        """Accept a message for delivery (called via ``Process.send``)."""
        if destination not in self.processes:
            raise KeyError(f"unknown destination process {destination!r}")
        message.sender = source
        message.destination = destination
        message.send_time = self.sim.now
        # Re-stamp the identifier from the per-source counter: message ids
        # appear in the trace, and a process-global (or interleaving-
        # dependent) counter would make otherwise identical runs differ
        # depending on what ran earlier in the same interpreter.
        message.msg_id = self._next_msg_id(source)
        stats = self.stats
        stats.sent += 1
        by_type = stats.by_type_sent
        by_type[message.msg_type] = by_type.get(message.msg_type, 0) + 1
        trace = self.sim.trace
        # One bus probe gates everything message tracing would pay for:
        # building the sorted payload-key list, the event objects, and the
        # per-message f-string event names below.
        tracing = self.trace_messages and trace.wants("msg_send")
        if tracing:
            trace.record(
                "msg_send", source,
                msg_type=message.msg_type, destination=destination, msg_id=message.msg_id,
                payload_keys=sorted(message._payload),
            )
        if self._partitioned(source, destination):
            self.stats.dropped_partition += 1
            if self.trace_messages and trace.wants("msg_drop"):
                trace.record(
                    "msg_drop", source, reason="partition",
                    msg_type=message.msg_type, destination=destination, msg_id=message.msg_id,
                )
            return
        loss = self.loss_probability
        if loss > 0:
            draw = self._loss_draws.get(source)
            if draw is None:
                draw = self._loss_draws[source] = self._rng_for(source).random
            if draw() < loss:
                stats.dropped_loss += 1
                if self.trace_messages and trace.wants("msg_drop"):
                    trace.record(
                        "msg_drop", source, reason="loss",
                        msg_type=message.msg_type, destination=destination, msg_id=message.msg_id,
                    )
                return
        self._transmit(message, destination, tracing)

    def _transmit(self, message: Message, destination: str, tracing: bool):
        """Carry an accepted message to its destination.

        The base network samples a latency and schedules an in-memory
        delivery (returning the scheduled event);
        :class:`repro.runtime.tcp.TcpTransport` overrides this to write a
        wire frame to a real socket instead.  Everything above this seam
        (validation, stamping, stats, partition/loss drops, tracing) is
        shared between the backends.
        """
        source = message.sender
        link = (source, destination)
        sampler = self._samplers.get(link)
        if sampler is None:
            sampler = self._samplers[link] = self.latency.sampler(
                self._rng_for(source), source, destination)
        name = f"deliver:{message.msg_type}->{destination}" if tracing else "deliver"
        return self.sim.schedule_call(sampler(), self._deliver_bound, message,
                                      name=name)

    def _deliver(self, message: Message) -> None:
        destination_name = message.destination
        trace = self.sim.trace
        destination = self.processes.get(destination_name)
        if destination is None or not destination.up:
            self.stats.dropped_dest_down += 1
            if self.trace_messages and trace.wants("msg_drop"):
                trace.record(
                    "msg_drop", destination_name, reason="destination_down",
                    msg_type=message.msg_type, msg_id=message.msg_id, sender=message.sender,
                )
            return
        stats = self.stats
        stats.delivered += 1
        by_type = stats.by_type_delivered
        by_type[message.msg_type] = by_type.get(message.msg_type, 0) + 1
        if self.trace_messages and trace.wants("msg_deliver"):
            trace.record(
                "msg_deliver", destination_name,
                msg_type=message.msg_type, sender=message.sender, msg_id=message.msg_id,
            )
        destination.deliver(message)
