"""Message-passing network: latency models, loss, partitions, reliable channels."""

from repro.net.latency import (
    ExponentialLatency,
    FixedLatency,
    LatencyModel,
    PerLinkLatency,
    UniformLatency,
)
from repro.net.message import Message, any_of, from_senders, is_type, is_type_with
from repro.net.network import Network, NetworkStats
from repro.net.reliable import ReliableChannelLayer

__all__ = [
    "Message",
    "is_type",
    "is_type_with",
    "any_of",
    "from_senders",
    "Network",
    "NetworkStats",
    "ReliableChannelLayer",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "ExponentialLatency",
    "PerLinkLatency",
]
