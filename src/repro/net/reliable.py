"""Reliable channels built over a lossy network.

The paper assumes *reliable channels*: if ``pi`` sends ``m`` to ``pj`` then,
unless one of them crashes, ``pj`` eventually delivers ``m``, and every message
is delivered at most once (Section 4, and Section 5: "the abstraction of
reliable channels is implemented by retransmitting messages and tracking
duplicates").

:class:`ReliableChannelLayer` is exactly that implementation: it interposes on
every registered process, numbers outgoing messages per (source, destination)
pair, retransmits unacknowledged messages on a timer while the sender is up,
acknowledges every received data message, and suppresses duplicates at the
receiver.  Protocol code above it is unchanged -- it still calls
``process.send`` and receives the original :class:`~repro.net.message.Message`.
"""

from __future__ import annotations

from typing import Optional

from repro.net.message import Message
from repro.net.network import Network
from repro.sim.process import Process
from repro.sim.scheduler import ScheduledEvent

DATA_TYPE = "_rc_data"
ACK_TYPE = "_rc_ack"


class _PendingTransmission:
    """Book-keeping for one unacknowledged message at the sender."""

    __slots__ = ("message", "sequence", "timer", "attempts")

    def __init__(self, message: Message, sequence: int):
        self.message = message
        self.sequence = sequence
        self.timer: Optional[ScheduledEvent] = None
        self.attempts = 0


class ReliableChannelLayer:
    """Retransmission + duplicate-suppression layer over a :class:`Network`.

    Parameters
    ----------
    network:
        The (possibly lossy) underlying network.  All processes registered on
        it at wrap time are interposed; processes registered later can be added
        with :meth:`wrap_process`.
    retransmit_interval:
        Virtual-time delay between retransmissions of an unacknowledged
        message.
    max_attempts:
        Optional bound on retransmissions (``None`` retries forever, which is
        what the reliable-channel abstraction requires; a bound is useful in
        tests).
    """

    def __init__(self, network: Network, retransmit_interval: float = 10.0,
                 max_attempts: Optional[int] = None):
        if retransmit_interval <= 0:
            raise ValueError("retransmit_interval must be positive")
        self.network = network
        self.sim = network.sim
        self.retransmit_interval = retransmit_interval
        self.max_attempts = max_attempts
        # sender name -> destination name -> next sequence number
        self._next_seq: dict[str, dict[str, int]] = {}
        # sender name -> (destination, seq) -> pending transmission
        self._pending: dict[str, dict[tuple[str, int], _PendingTransmission]] = {}
        # receiver name -> set of (sender, seq) already delivered
        self._seen: dict[str, set[tuple[str, int]]] = {}
        self._wrapped: set[str] = set()
        for process in list(network.processes.values()):
            self.wrap_process(process)

    # ------------------------------------------------------------------ setup

    def wrap_process(self, process: Process) -> None:
        """Interpose this layer between ``process`` and the raw network."""
        if process.name in self._wrapped:
            return
        self._wrapped.add(process.name)
        self._next_seq[process.name] = {}
        self._pending[process.name] = {}
        self._seen[process.name] = set()
        process.attach_transport(_ReliableTransport(self, process.name))
        original_deliver = process.deliver

        def filtered_deliver(message: Message, _original=original_deliver,
                             _name=process.name) -> None:
            self._on_deliver(_name, message, _original)

        process.deliver = filtered_deliver  # type: ignore[method-assign]

    # ---------------------------------------------------------------- sending

    def send(self, source: str, destination: str, message: Message) -> None:
        """Send ``message`` reliably from ``source`` to ``destination``."""
        seqs = self._next_seq[source]
        sequence = seqs.get(destination, 0) + 1
        seqs[destination] = sequence
        pending = _PendingTransmission(message, sequence)
        self._pending[source][(destination, sequence)] = pending
        self._transmit(source, destination, pending)

    def _transmit(self, source: str, destination: str, pending: _PendingTransmission) -> None:
        key = (destination, pending.sequence)
        if key not in self._pending[source]:
            return  # already acknowledged
        sender = self.network.processes.get(source)
        if sender is None or not sender.up:
            # A crashed sender performs no actions; the reliable-channel
            # obligation is void once the sender has crashed.
            return
        if self.max_attempts is not None and pending.attempts >= self.max_attempts:
            self._pending[source].pop(key, None)
            return
        pending.attempts += 1
        envelope = Message(
            DATA_TYPE,
            payload={"seq": pending.sequence, "inner": pending.message, "origin": source},
        )
        self.network.send(source, destination, envelope)
        pending.timer = self.sim.schedule(
            self.retransmit_interval,
            lambda: self._transmit(source, destination, pending),
            name=f"rc-retransmit:{source}->{destination}#{pending.sequence}",
        )

    # --------------------------------------------------------------- receiving

    def _on_deliver(self, receiver: str, message: Message, original_deliver) -> None:
        if not isinstance(message, Message):
            original_deliver(message)
            return
        if message.msg_type == ACK_TYPE:
            self._handle_ack(receiver, message)
            return
        if message.msg_type != DATA_TYPE:
            # Raw traffic (e.g. from components bypassing the layer).
            original_deliver(message)
            return
        origin = message["origin"]
        sequence = message["seq"]
        ack = Message(ACK_TYPE, payload={"seq": sequence, "acker": receiver})
        self.network.send(receiver, origin, ack)
        seen = self._seen[receiver]
        if (origin, sequence) in seen:
            self.sim.trace.record("rc_duplicate_suppressed", receiver,
                                  origin=origin, seq=sequence)
            return
        seen.add((origin, sequence))
        inner: Message = message["inner"]
        inner.sender = origin
        inner.destination = receiver
        original_deliver(inner)

    def _handle_ack(self, receiver: str, message: Message) -> None:
        sequence = message["seq"]
        acker = message["acker"]
        pending = self._pending.get(receiver, {}).pop((acker, sequence), None)
        if pending is not None and pending.timer is not None:
            pending.timer.cancel()

    # ------------------------------------------------------------------ stats

    def unacknowledged(self, source: str) -> int:
        """Number of messages ``source`` is still retransmitting."""
        return len(self._pending.get(source, {}))


class _ReliableTransport:
    """Per-process transport facade installed by :class:`ReliableChannelLayer`."""

    __slots__ = ("_layer", "_name")

    def __init__(self, layer: ReliableChannelLayer, name: str):
        self._layer = layer
        self._name = name

    def send(self, source: str, destination: str, message: Message) -> None:
        self._layer.send(source, destination, message)
