"""Message representation and matching helpers.

All protocol traffic is carried by :class:`Message` objects.  A message has a
``msg_type`` (the tag in the paper's pseudo-code, e.g. ``"Request"``,
``"Prepare"``, ``"Vote"``, ``"Decide"``, ``"AckDecide"``, ``"Ready"``,
``"Result"``), a ``sender``/``destination`` pair and a free-form payload
dictionary.  Every message carries a globally unique ``msg_id`` so that
duplicate suppression (the paper's channel *integrity* property) is possible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

_msg_counter = itertools.count(1)


@dataclass
class Message:
    """A single protocol message.

    Attributes
    ----------
    msg_type:
        The message tag (``"Request"``, ``"Prepare"``, ...).
    sender / destination:
        Process names.
    payload:
        Message contents; keys are protocol specific (``request``, ``j``,
        ``vote``, ``outcome``, ``decision``...).
    msg_id:
        Unique identifier assigned at construction time.
    send_time:
        Virtual time at which the network accepted the message (filled by the
        network).
    """

    msg_type: str
    sender: str = ""
    destination: str = ""
    payload: dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_msg_counter))
    send_time: float = 0.0

    def get(self, key: str, default: Any = None) -> Any:
        """Shorthand for ``message.payload.get(key, default)``."""
        return self.payload.get(key, default)

    def copy(self) -> "Message":
        """A fresh message (new ``msg_id``) with the same type and payload.

        Used by multicast so each recipient gets its own message instance, as
        the network mutates routing fields in place.
        """
        return Message(self.msg_type, payload=dict(self.payload))

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]

    def __repr__(self) -> str:
        return (
            f"Message({self.msg_type!r}, {self.sender!r}->{self.destination!r}, "
            f"{self.payload!r})"
        )


def is_type(*msg_types: str) -> Callable[[Any], bool]:
    """Matcher accepting any message whose ``msg_type`` is in ``msg_types``."""
    allowed = set(msg_types)

    def matcher(message: Any) -> bool:
        return isinstance(message, Message) and message.msg_type in allowed

    return matcher


def is_type_with(msg_type: str, **expected: Any) -> Callable[[Any], bool]:
    """Matcher for a message type with specific payload values.

    Example: ``is_type_with("Vote", j=3)`` matches vote messages for result 3.
    """

    def matcher(message: Any) -> bool:
        if not isinstance(message, Message) or message.msg_type != msg_type:
            return False
        return all(message.payload.get(key) == value for key, value in expected.items())

    return matcher


def any_of(*matchers: Callable[[Any], bool]) -> Callable[[Any], bool]:
    """Matcher accepting a message accepted by any of ``matchers``."""

    def matcher(message: Any) -> bool:
        return any(m(message) for m in matchers)

    return matcher


def from_senders(senders: Iterable[str],
                 inner: Optional[Callable[[Any], bool]] = None) -> Callable[[Any], bool]:
    """Matcher restricting ``inner`` (or any message) to a set of senders."""
    allowed = set(senders)

    def matcher(message: Any) -> bool:
        if not isinstance(message, Message) or message.sender not in allowed:
            return False
        return True if inner is None else inner(message)

    return matcher
