"""Message representation and matching helpers.

All protocol traffic is carried by :class:`Message` objects.  A message has a
``msg_type`` (the tag in the paper's pseudo-code, e.g. ``"Request"``,
``"Prepare"``, ``"Vote"``, ``"Decide"``, ``"AckDecide"``, ``"Ready"``,
``"Result"``), a ``sender``/``destination`` pair and a free-form payload
dictionary.  Every message carries a globally unique ``msg_id`` so that
duplicate suppression (the paper's channel *integrity* property) is possible;
the network re-stamps it at send time from a per-source counter, so the id a
message ends up with depends only on its sender's own send history.
"""

from __future__ import annotations

import json
from sys import intern as _intern
from typing import Any, Callable, Iterable, Optional

WIRE_VERSION = 1
"""Current version of the :meth:`Message.to_wire` encoding."""


class WireFormatError(ValueError):
    """A value cannot be encoded for / decoded from the wire."""


# The wire encoding must restore payload values *exactly*: protocol code uses
# tuples from payloads as dict keys (consensus instance ids, result keys), so
# the JSON tuple->list collapse would break it.  Every container is therefore
# written as a tagged object ({"k": <kind>, ...}); plain JSON arrays carry
# lists and scalars travel as themselves, so there is nothing to escape.

def _encode_value(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise WireFormatError(f"non-finite float {value!r} is not wire-encodable")
        return value
    if isinstance(value, list):
        return [_encode_value(item) for item in value]
    if isinstance(value, tuple):
        return {"k": "tuple", "v": [_encode_value(item) for item in value]}
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value):
            return {"k": "map", "v": {key: _encode_value(item) for key, item in value.items()}}
        return {"k": "imap",
                "v": [[_encode_value(key), _encode_value(item)] for key, item in value.items()]}
    # Lazy imports: repro.core imports this module at package-init time.
    from repro.core.types import Decision, Request, Result

    if isinstance(value, Request):
        return {"k": "request", "op": value.operation, "params": _encode_value(value.params),
                "id": value.request_id, "parts": [_encode_value(p) for p in value.participants]}
    if isinstance(value, Decision):
        return {"k": "decision", "outcome": value.outcome,
                "result": _encode_value(value.result)}
    if isinstance(value, Result):
        return {"k": "result", "value": _encode_value(value.value),
                "request_id": value.request_id, "by": value.computed_by}
    raise WireFormatError(f"type {type(value).__name__!r} is not wire-encodable")


def _decode_value(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    if isinstance(value, dict):
        kind = value.get("k")
        if kind == "tuple":
            return tuple(_decode_value(item) for item in value["v"])
        if kind == "map":
            return {key: _decode_value(item) for key, item in value["v"].items()}
        if kind == "imap":
            return {_decode_value(key): _decode_value(item) for key, item in value["v"]}
        from repro.core.types import Decision, Request, Result

        if kind == "request":
            return Request(operation=value["op"], params=_decode_value(value["params"]),
                           request_id=value["id"],
                           participants=tuple(_decode_value(p) for p in value["parts"]))
        if kind == "decision":
            return Decision(result=_decode_value(value["result"]), outcome=value["outcome"])
        if kind == "result":
            return Result(value=_decode_value(value["value"]),
                          request_id=value["request_id"], computed_by=value["by"])
        raise WireFormatError(f"unknown wire value kind {kind!r}")
    raise WireFormatError(f"cannot decode wire value {value!r}")


class Message:
    """A single protocol message.

    Attributes
    ----------
    msg_type:
        The message tag (``"Request"``, ``"Prepare"``, ...).
    sender / destination:
        Process names.
    payload:
        Message contents; keys are protocol specific (``request``, ``j``,
        ``vote``, ``outcome``, ``decision``...).
    msg_id:
        Unique identifier; ``0`` until the network stamps it at send time
        from the sender's per-source counter.
    send_time:
        Virtual time at which the network accepted the message (filled by the
        network).

    The payload dict is shared copy-on-write between a message and its
    :meth:`copy` siblings: reads go through ``get``/``__getitem__`` without
    copying, and the ``payload`` property materializes a private dict the
    first time a potentially shared one is exposed for mutation.
    """

    __slots__ = ("msg_type", "sender", "destination", "msg_id", "send_time",
                 "_payload", "_shared")

    def __init__(self, msg_type: str, sender: str = "", destination: str = "",
                 payload: Optional[dict[str, Any]] = None, msg_id: int = 0,
                 send_time: float = 0.0) -> None:
        self.msg_type = msg_type
        self.sender = sender
        self.destination = destination
        self._payload = {} if payload is None else payload
        self._shared = False
        self.msg_id = msg_id
        self.send_time = send_time

    @property
    def payload(self) -> dict[str, Any]:
        """The payload dict, private to this message.

        If the dict is currently shared with :meth:`copy` siblings it is
        duplicated first, so callers may mutate the result freely.
        """
        payload = self._payload
        if self._shared:
            payload = dict(payload)
            self._payload = payload
            self._shared = False
        return payload

    def get(self, key: str, default: Any = None) -> Any:
        """Shorthand for ``message.payload.get(key, default)`` (no copy)."""
        return self._payload.get(key, default)

    def copy(self) -> "Message":
        """A fresh, unstamped message with the same type and payload.

        Used by multicast so each recipient gets its own message instance, as
        the network mutates routing fields in place.  The payload dict is
        shared copy-on-write rather than eagerly duplicated; either side
        copies it lazily if its ``payload`` property is touched.
        """
        sibling = Message.__new__(Message)
        sibling.msg_type = self.msg_type
        sibling.sender = ""
        sibling.destination = ""
        payload = self._payload
        sibling._payload = payload
        if payload:
            sibling._shared = True
            self._shared = True
        else:
            sibling._shared = False
        sibling.msg_id = 0
        sibling.send_time = 0.0
        return sibling

    def __eq__(self, other: Any) -> Any:
        if not isinstance(other, Message):
            return NotImplemented
        return (self.msg_type == other.msg_type and self.sender == other.sender
                and self.destination == other.destination
                and self._payload == other._payload
                and self.msg_id == other.msg_id
                and self.send_time == other.send_time)

    __hash__ = None  # type: ignore[assignment]  # mutable, like the dataclass it replaced

    # ------------------------------------------------------------ wire codec

    def to_wire(self) -> bytes:
        """Stable, versioned serialization of this message (UTF-8 JSON).

        The encoding round-trips everything protocol payloads contain --
        tuples (restored as tuples, not lists), dicts with non-string keys,
        and the :mod:`repro.core.types` dataclasses.  Used by the TCP
        transport (inside length-prefixed frames) and usable for trace
        artifacts.  Raises :class:`WireFormatError` on unsupported values.
        """
        envelope = {
            "v": WIRE_VERSION,
            "t": self.msg_type,
            "s": self.sender,
            "d": self.destination,
            "id": self.msg_id,
            "ts": self.send_time,
            "p": {key: _encode_value(value) for key, value in self._payload.items()},
        }
        return json.dumps(envelope, separators=(",", ":"), allow_nan=False).encode("utf-8")

    @classmethod
    def from_wire(cls, data: bytes) -> "Message":
        """Decode a :meth:`to_wire` frame; rejects unknown wire versions."""
        try:
            envelope = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireFormatError(f"undecodable wire frame: {exc}") from None
        if not isinstance(envelope, dict):
            raise WireFormatError(f"wire frame is not an envelope: {envelope!r}")
        version = envelope.get("v")
        if version != WIRE_VERSION:
            raise WireFormatError(
                f"unsupported wire version {version!r} (this build speaks {WIRE_VERSION})"
            )
        try:
            # Interning collapses the handful of hot strings (message tags,
            # payload keys, process names) that every decoded frame repeats,
            # so long TCP runs do not accumulate duplicate immortal strings
            # and type/key comparisons hit the pointer fast path.
            return cls(
                msg_type=_intern(envelope["t"]),
                sender=_intern(envelope["s"]),
                destination=_intern(envelope["d"]),
                payload={_intern(key): _decode_value(value)
                         for key, value in envelope["p"].items()},
                msg_id=envelope["id"],
                send_time=envelope["ts"],
            )
        except KeyError as exc:
            raise WireFormatError(f"wire envelope missing field {exc}") from None
        except TypeError as exc:
            raise WireFormatError(f"malformed wire envelope field: {exc}") from None

    def __getitem__(self, key: str) -> Any:
        return self._payload[key]

    def __repr__(self) -> str:
        return (
            f"Message({self.msg_type!r}, {self.sender!r}->{self.destination!r}, "
            f"{self._payload!r})"
        )


# Matchers built by the helpers below carry two *hint* attributes the process
# layer uses to index receive-blocked threads and the mailbox:
#
# * ``msg_types`` -- the frozenset of message types the matcher could accept;
# * ``msg_corr``  -- per accepted type, either :data:`ANY_CORRELATION` or the
#   frozenset of ``j`` payload values (the protocol's correlation id) the
#   matcher requires.  A thread waiting for ``Vote`` with ``j=key`` is indexed
#   under ``("Vote", key)``, so delivering a vote consults exactly the threads
#   of that transaction instead of every in-flight handler.
#
# Both hints must be *sound*: a matcher must reject every message outside
# them.  Hand-written matcher functions without the attributes are treated as
# wildcards (checked against everything).

ANY_CORRELATION = object()
"""Correlation hint meaning "any ``j`` value" for a message type."""


def matcher_types(matcher: Optional[Callable[[Any], bool]]) -> Optional[frozenset[str]]:
    """The message-type hint of ``matcher`` (``None`` = could match any type)."""
    if matcher is None:
        return None
    return getattr(matcher, "msg_types", None)


def matcher_correlation(matcher: Optional[Callable[[Any], bool]]) -> Optional[dict]:
    """The per-type correlation hint of ``matcher`` (``None`` = no hint)."""
    if matcher is None:
        return None
    return getattr(matcher, "msg_corr", None)


def is_type(*msg_types: str) -> Callable[[Any], bool]:
    """Matcher accepting any message whose ``msg_type`` is in ``msg_types``.

    Matchers are stateless, so calls with the same type tuple share one
    cached instance: receive loops build a matcher per iteration, and the
    closure allocation was measurable on the delivery hot path.
    """
    cached = _IS_TYPE_CACHE.get(msg_types)
    if cached is not None:
        return cached
    allowed = set(msg_types)

    def matcher(message: Any) -> bool:
        return isinstance(message, Message) and message.msg_type in allowed

    matcher.msg_types = frozenset(allowed)
    matcher.msg_corr = {t: ANY_CORRELATION for t in allowed}
    _IS_TYPE_CACHE[msg_types] = matcher
    return matcher


_IS_TYPE_CACHE: dict[tuple, Callable[[Any], bool]] = {}


def _hashable(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


def is_type_with(msg_type: str, **expected: Any) -> Callable[[Any], bool]:
    """Matcher for a message type with specific payload values.

    Example: ``is_type_with("Vote", j=3)`` matches vote messages for result 3.

    Deliberately *not* cached by value: correlation ids are transaction
    scoped, so a value-keyed cache retains a closure (plus its hint sets)
    per transaction for the lifetime of the run -- measurably worse than the
    transient closure, which dies with the receive that used it.  Callers
    with retry loops should build the matcher once, before the loop.
    """
    if len(expected) == 1:
        # The overwhelmingly common shape (e.g. ``j=key``): avoid building a
        # generator per probe on the delivery hot path.
        (key, value), = expected.items()

        def matcher(message: Any) -> bool:
            return (isinstance(message, Message) and message.msg_type == msg_type
                    and message._payload.get(key) == value)
    else:
        def matcher(message: Any) -> bool:
            if not isinstance(message, Message) or message.msg_type != msg_type:
                return False
            return all(message._payload.get(k) == v for k, v in expected.items())

    matcher.msg_types = frozenset((msg_type,))
    correlation = expected.get("j", ANY_CORRELATION)
    matcher.msg_corr = {msg_type: frozenset((correlation,))
                        if correlation is not ANY_CORRELATION and _hashable(correlation)
                        else ANY_CORRELATION}
    return matcher


def any_of(*matchers: Callable[[Any], bool]) -> Callable[[Any], bool]:
    """Matcher accepting a message accepted by any of ``matchers``.

    Uncached for the same reason as :func:`is_type_with`: combinations
    usually embed a transaction-scoped inner matcher, so retaining them
    would leak one combined closure per transaction.
    """
    def matcher(message: Any) -> bool:
        for m in matchers:
            if m(message):
                return True
        return False

    hints = [matcher_types(m) for m in matchers]
    if all(hint is not None for hint in hints):
        matcher.msg_types = frozenset().union(*hints)
        merged: dict = {}
        for m, types in zip(matchers, hints):
            corr = matcher_correlation(m) or {}
            # A type the inner matcher accepts without a correlation entry
            # (msg_types-only hint) must stay reachable: it merges as ANY.
            for msg_type in types:
                value = corr.get(msg_type, ANY_CORRELATION)
                existing = merged.get(msg_type)
                if value is ANY_CORRELATION or existing is ANY_CORRELATION:
                    merged[msg_type] = ANY_CORRELATION
                elif existing is None:
                    merged[msg_type] = value
                else:
                    merged[msg_type] = existing | value
        matcher.msg_corr = merged
    return matcher


def from_senders(senders: Iterable[str],
                 inner: Optional[Callable[[Any], bool]] = None) -> Callable[[Any], bool]:
    """Matcher restricting ``inner`` (or any message) to a set of senders."""
    allowed = set(senders)

    def matcher(message: Any) -> bool:
        if not isinstance(message, Message) or message.sender not in allowed:
            return False
        return True if inner is None else inner(message)

    hint = matcher_types(inner)
    if hint is not None:
        matcher.msg_types = hint
        corr = matcher_correlation(inner)
        if corr is not None:
            matcher.msg_corr = corr
    return matcher
