"""Link-latency models.

The paper's testbed is a lightly-loaded 10 Mbit/s Ethernet where an Orbix RPC
round trip takes 3-5 ms.  We model one-way link latency with pluggable
distributions so experiments can use either the deterministic calibrated value
(for exact reproduction of the latency table) or a randomised one (for fault
and timing sweeps).
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Sequence

Sampler = Callable[[], float]
"""A zero-argument latency sampler bound to one directed link (see
:meth:`LatencyModel.sampler`)."""


class LatencyModel:
    """Base class: returns a one-way latency sample per message."""

    def sample(self, rng: random.Random, source: str, destination: str) -> float:
        """Latency (virtual-time units, milliseconds by convention) for one message."""
        raise NotImplementedError

    def sampler(self, rng: random.Random, source: str, destination: str) -> "Sampler":
        """A zero-argument sampler bound to one directed link and one RNG.

        The network resolves this once per link instead of re-resolving the
        model and re-binding the RNG on every message.  Implementations must
        consume ``rng`` exactly as :meth:`sample` would, in the same order,
        so a run using bound samplers draws identical latencies (this is
        load-bearing for byte-identical traces).  The default wraps
        :meth:`sample`; subclasses pre-bind their RNG primitive so the
        per-message call does no attribute lookups at all.
        """
        return lambda: self.sample(rng, source, destination)

    def mean(self) -> float:
        """Expected latency; used by analytic step-count estimates."""
        raise NotImplementedError

    def min_latency(self, source: str, destination: str) -> float:
        """A hard lower bound on :meth:`sample` for the given link.

        No sample for ``(source, destination)`` may ever come in below this
        value.  The conservative parallel kernel
        (:mod:`repro.sim.parallel`) uses the minimum over all cross-shard
        links as its lookahead: a shard may run ``min_latency`` ahead of its
        peers because no message from them can arrive sooner.  Also usable
        standalone for analytic best-case step-count estimates.
        """
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """Every message takes exactly ``value`` time units."""

    def __init__(self, value: float):
        if value < 0:
            raise ValueError("latency must be non-negative")
        self.value = value

    def sample(self, rng: random.Random, source: str, destination: str) -> float:
        return self.value

    def sampler(self, rng: random.Random, source: str, destination: str) -> "Sampler":
        value = self.value  # no RNG draw, no lookup: the link is constant
        return lambda: value

    def mean(self) -> float:
        return self.value

    def min_latency(self, source: str, destination: str) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"FixedLatency({self.value})"


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if low < 0 or high < low:
            raise ValueError(f"invalid latency range [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random, source: str, destination: str) -> float:
        return rng.uniform(self.low, self.high)

    def sampler(self, rng: random.Random, source: str, destination: str) -> "Sampler":
        # Identical arithmetic to random.Random.uniform (a + (b-a)*random()),
        # with the method resolution hoisted out of the per-message path.
        low, span, draw = self.low, self.high - self.low, rng.random
        return lambda: low + span * draw()

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def min_latency(self, source: str, destination: str) -> float:
        return self.low

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class ExponentialLatency(LatencyModel):
    """Latency of ``base + Exp(mean=tail_mean)``; models occasional slow links."""

    def __init__(self, base: float, tail_mean: float):
        if base < 0 or tail_mean < 0:
            raise ValueError("latency parameters must be non-negative")
        self.base = base
        self.tail_mean = tail_mean

    def sample(self, rng: random.Random, source: str, destination: str) -> float:
        tail = rng.expovariate(1.0 / self.tail_mean) if self.tail_mean > 0 else 0.0
        return self.base + tail

    def sampler(self, rng: random.Random, source: str, destination: str) -> "Sampler":
        base = self.base
        if self.tail_mean <= 0:
            return lambda: base
        draw, lambd = rng.expovariate, 1.0 / self.tail_mean
        return lambda: base + draw(lambd)

    def mean(self) -> float:
        return self.base + self.tail_mean

    def min_latency(self, source: str, destination: str) -> float:
        return self.base

    def __repr__(self) -> str:
        return f"ExponentialLatency(base={self.base}, tail_mean={self.tail_mean})"


def three_tier_latency(client_names: Sequence[str], app_server_names: Sequence[str],
                       db_server_names: Sequence[str], *,
                       client_app_latency: float,
                       app_app_latency: float,
                       app_db_latency: float) -> "PerLinkLatency":
    """The standard client <-> app <-> db latency topology.

    Client/app links cross the Internet, app/app and app/db links stay inside
    the cluster; app-to-app traffic uses the default.  Shared by every
    deployment builder so all protocol stacks run on an identical network.
    """
    latency = PerLinkLatency(FixedLatency(app_app_latency))
    for client in client_names:
        for app in app_server_names:
            latency.set_link(client, app, FixedLatency(client_app_latency))
            latency.set_link(app, client, FixedLatency(client_app_latency))
    for app in app_server_names:
        for db in db_server_names:
            latency.set_link(app, db, FixedLatency(app_db_latency))
            latency.set_link(db, app, FixedLatency(app_db_latency))
    return latency


def min_cross_latency(model: LatencyModel,
                      shards: Sequence[Sequence[str]]) -> float:
    """The conservative lookahead of a sharded run: the smallest
    :meth:`LatencyModel.min_latency` over every directed link whose endpoints
    live in *different* shards.

    Each shard of a parallel simulation may safely run this far ahead of the
    global event horizon -- no cross-shard message can arrive sooner.  A
    cross-shard link with a zero lower bound is rejected: its lookahead
    window would be empty and the conservative rounds could never advance.
    """
    bound = float("inf")
    worst: Optional[tuple[str, str]] = None
    for i, shard in enumerate(shards):
        others = [name for j, other in enumerate(shards) if j != i
                  for name in other]
        for source in shard:
            for destination in others:
                link = model.min_latency(source, destination)
                if link < bound:
                    bound = link
                    worst = (source, destination)
    if worst is not None and bound <= 0:
        raise ValueError(
            f"cross-shard link {worst[0]!r} -> {worst[1]!r} has a zero-or-"
            f"negative latency lower bound ({bound}); conservative parallel "
            "simulation needs every cross-shard link to have min_latency > 0")
    return bound


class PerLinkLatency(LatencyModel):
    """Different latency models per (source, destination) pair with a default.

    Used to model the three-tier topology where the client-to-server hop
    crosses the Internet while server-to-server and server-to-database hops
    stay inside the cluster.
    """

    def __init__(self, default: LatencyModel, overrides: Optional[dict[tuple[str, str], LatencyModel]] = None):
        self.default = default
        self.overrides: dict[tuple[str, str], LatencyModel] = dict(overrides or {})

    def set_link(self, source: str, destination: str, model: LatencyModel) -> None:
        """Override the latency model for one directed link."""
        self.overrides[(source, destination)] = model

    def _resolve(self, source: str, destination: str) -> LatencyModel:
        return self.overrides.get((source, destination), self.default)

    def sample(self, rng: random.Random, source: str, destination: str) -> float:
        return self._resolve(source, destination).sample(rng, source, destination)

    def sampler(self, rng: random.Random, source: str, destination: str) -> "Sampler":
        # Resolving the per-link override happens once here, not per message.
        return self._resolve(source, destination).sampler(rng, source, destination)

    def mean(self) -> float:
        return self.default.mean()

    def min_latency(self, source: str, destination: str) -> float:
        return self._resolve(source, destination).min_latency(source, destination)

    def __repr__(self) -> str:
        return f"PerLinkLatency(default={self.default!r}, overrides={len(self.overrides)})"
